//! Versioned, checksummed session snapshots: a replayable delta log.
//!
//! A session's mutable match state ([`crate::state::MatchState`] +
//! [`crate::session::SessionNet`]) is never serialized as a pointer graph.
//! Because every mutation enters through a small deterministic API
//! (`add_wme` / `remove_wme` / `run_cycle` / `add_production`) and the
//! overlay replays monolithic append order exactly, the *op log itself* is
//! a complete snapshot: replaying it against the same frozen
//! [`crate::session::Topology`] reconstructs working memory, token
//! memories, the chunk overlay, and the conflict-set-bearing P-node tokens
//! bit for bit. The serving layer's tiered session store (psme-serve)
//! hibernates sessions as these logs and resumes them transparently.
//!
//! On the wire a snapshot is framed as
//!
//! ```text
//! magic (4) | version (u32 LE) | payload_len (u64 LE) | payload | fnv1a64(payload)
//! ```
//!
//! and every decode path returns a typed [`SnapshotError`] — corrupted,
//! truncated or wrong-version bytes are rejected, never panicked on and
//! never replayed into a silently wrong session. Symbols travel as strings
//! (re-interned on decode) and chunk productions travel as their printed
//! source text (the printer/parser round-trip is property-tested), so a
//! snapshot does not depend on intern-table numbering.

use crate::network::NetworkOrg;
use crate::serial::SerialEngine;
use crate::session::{SessionNet, Topology};
use crate::state::MatchState;
use crate::trace::Phase;
use psme_ops::{
    parse_production, production_text, ClassRegistry, Production, Symbol, Value, Wme, WmeId,
};
use std::sync::Arc;

/// Frame magic for a rete journal snapshot.
pub const JOURNAL_MAGIC: [u8; 4] = *b"PSNJ";
/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Why a snapshot could not be decoded or replayed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The frame does not start with the expected magic.
    BadMagic,
    /// The frame is a later (or earlier) format than this build reads.
    UnsupportedVersion(u32),
    /// The byte stream ends before the structure it promises.
    Truncated,
    /// The payload checksum does not match its contents.
    ChecksumMismatch,
    /// Structurally invalid payload (bad tag, bad UTF-8, trailing bytes…).
    Corrupt(String),
    /// The log decoded but could not be replayed against this topology.
    Replay(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot: bad magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot: unsupported format version {v}")
            }
            SnapshotError::Truncated => write!(f, "snapshot: truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot: checksum mismatch"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot: corrupt ({why})"),
            SnapshotError::Replay(why) => write!(f, "snapshot: replay failed ({why})"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over `bytes` (64-bit). A single flipped payload byte always
/// changes the digest (xor-then-odd-multiply is injective per step), which
/// is all the framing needs — this guards against torn writes, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian append-only encoder for snapshot payloads.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Bool as 0/1.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// u32, little endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// u64, little endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// i64, little endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// f64 as its bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Symbol by name (re-interned on decode; never by intern id).
    pub fn sym(&mut self, s: Symbol) {
        self.str(&psme_ops::sym_name(s));
    }

    /// One attribute value.
    pub fn value(&mut self, v: Value) {
        match v {
            Value::Nil => self.u8(0),
            Value::Sym(s) => {
                self.u8(1);
                self.sym(s);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(i);
            }
        }
    }

    /// A whole wme (class name + field values).
    pub fn wme(&mut self, w: &Wme) {
        self.sym(w.class);
        self.u64(w.fields.len() as u64);
        for &v in w.fields.iter() {
            self.value(v);
        }
    }

    /// A network organization.
    pub fn org(&mut self, org: &NetworkOrg) {
        match org {
            NetworkOrg::Linear => self.u8(0),
            NetworkOrg::Bilinear(groups) => {
                self.u8(1);
                self.u64(groups.len() as u64);
                for g in groups {
                    self.u64(g.len() as u64);
                    for &ce in g {
                        self.u64(ce as u64);
                    }
                }
            }
        }
    }
}

/// Cursor over snapshot payload bytes; every read is bounds-checked and
/// returns [`SnapshotError::Truncated`] rather than panicking.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte was consumed (a valid payload has no slack
    /// for trailing garbage).
    pub fn expect_done(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Bool; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// u32, little endian.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// u64, little endian.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A u64 that must fit a usize-sized count. Counts are *not* used to
    /// pre-reserve allocations — decode loops consume at least one byte per
    /// element, so a lying count dies as [`SnapshotError::Truncated`].
    pub fn count(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("count {v} overflows")))
    }

    /// i64, little endian.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("string is not UTF-8".into()))
    }

    /// Symbol by name.
    pub fn sym(&mut self) -> Result<Symbol, SnapshotError> {
        Ok(psme_ops::intern(&self.str()?))
    }

    /// One attribute value.
    pub fn value(&mut self) -> Result<Value, SnapshotError> {
        match self.u8()? {
            0 => Ok(Value::Nil),
            1 => Ok(Value::Sym(self.sym()?)),
            2 => Ok(Value::Int(self.i64()?)),
            t => Err(SnapshotError::Corrupt(format!("value tag {t}"))),
        }
    }

    /// A whole wme.
    pub fn wme(&mut self) -> Result<Wme, SnapshotError> {
        let class = self.sym()?;
        let n = self.count()?;
        let mut fields = Vec::new();
        for _ in 0..n {
            fields.push(self.value()?);
        }
        Ok(Wme { class, fields: fields.into_boxed_slice() })
    }

    /// A network organization.
    pub fn org(&mut self) -> Result<NetworkOrg, SnapshotError> {
        match self.u8()? {
            0 => Ok(NetworkOrg::Linear),
            1 => {
                let ngroups = self.count()?;
                let mut groups = Vec::new();
                for _ in 0..ngroups {
                    let len = self.count()?;
                    let mut g = Vec::new();
                    for _ in 0..len {
                        g.push(self.count()?);
                    }
                    groups.push(g);
                }
                Ok(NetworkOrg::Bilinear(groups))
            }
            t => Err(SnapshotError::Corrupt(format!("org tag {t}"))),
        }
    }
}

/// Frame a payload: magic, version, length, payload, checksum.
pub fn seal_frame(magic: [u8; 4], version: u32, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let sum = fnv1a64(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Open a frame, validating magic, version, length and checksum. Returns
/// the payload slice.
pub fn open_frame(bytes: &[u8], magic: [u8; 4], version: u32) -> Result<&[u8], SnapshotError> {
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != magic {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let got_version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if got_version != version {
        return Err(SnapshotError::UnsupportedVersion(got_version));
    }
    if bytes.len() < 16 {
        return Err(SnapshotError::Truncated);
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let Ok(len) = usize::try_from(len) else {
        return Err(SnapshotError::Truncated);
    };
    let Some(total) = len.checked_add(24) else {
        return Err(SnapshotError::Truncated);
    };
    if bytes.len() < total {
        return Err(SnapshotError::Truncated);
    }
    if bytes.len() > total {
        return Err(SnapshotError::Corrupt(format!("{} trailing bytes", bytes.len() - total)));
    }
    let payload = &bytes[16..16 + len];
    let sum = u64::from_le_bytes(bytes[16 + len..].try_into().expect("8 bytes"));
    if fnv1a64(payload) != sum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(payload)
}

/// One engine mutation, as recorded in call order.
#[derive(Clone, Debug)]
pub enum SnapOp {
    /// `store.add(wme)` — `id` is the id the store assigned, revalidated on
    /// replay (ids are dense and never reused, so any divergence means the
    /// log is being replayed against the wrong history).
    AddWme {
        /// The wme added.
        wme: Wme,
        /// The id the store assigned at record time.
        id: WmeId,
    },
    /// `store.remove(id)`.
    RemoveWme {
        /// The wme marked dead.
        id: WmeId,
    },
    /// `run_cycle(changes, Phase::Match)` — one batched match to
    /// quiescence.
    RunChanges {
        /// The signed wme deltas injected.
        changes: Vec<(WmeId, i32)>,
    },
    /// `add_production(prod, org)` — a chunk built into the overlay plus
    /// its §5.2 state update.
    AddProd {
        /// The chunk (serialized as printed source text).
        prod: Arc<Production>,
        /// The network organization it was compiled under.
        org: NetworkOrg,
    },
    /// `reorganize_production(prod_idx, org)` — an adaptive mid-run rebuild.
    /// Deterministic given the ops before it, so replaying the op (rather
    /// than the detector state that triggered it) reconstructs the same
    /// rebuilt overlay.
    Reorg {
        /// Index of the production rebuilt.
        prod_idx: u32,
        /// The organization it was rebuilt under.
        org: NetworkOrg,
    },
}

/// The replayable delta log of one session's engine mutations.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    /// Ops in exact call order.
    pub ops: Vec<SnapOp>,
}

impl Journal {
    /// Encode into a sealed frame (see module docs for the layout).
    pub fn encode(&self, reg: &ClassRegistry) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_payload(reg, &mut w);
        seal_frame(JOURNAL_MAGIC, JOURNAL_VERSION, w.into_inner())
    }

    /// Encode just the payload (for embedding in a larger frame, as the
    /// serving layer's session snapshot does).
    pub fn encode_payload(&self, reg: &ClassRegistry, w: &mut ByteWriter) {
        w.u64(self.ops.len() as u64);
        for op in &self.ops {
            match op {
                SnapOp::AddWme { wme, id } => {
                    w.u8(0);
                    w.wme(wme);
                    w.u32(id.0);
                }
                SnapOp::RemoveWme { id } => {
                    w.u8(1);
                    w.u32(id.0);
                }
                SnapOp::RunChanges { changes } => {
                    w.u8(2);
                    w.u64(changes.len() as u64);
                    for &(id, delta) in changes {
                        w.u32(id.0);
                        w.i64(delta as i64);
                    }
                }
                SnapOp::AddProd { prod, org } => {
                    w.u8(3);
                    w.str(&production_text(prod, reg));
                    w.org(org);
                }
                SnapOp::Reorg { prod_idx, org } => {
                    w.u8(4);
                    w.u32(*prod_idx);
                    w.org(org);
                }
            }
        }
    }

    /// Decode a sealed frame.
    pub fn decode(bytes: &[u8], reg: &mut ClassRegistry) -> Result<Journal, SnapshotError> {
        let payload = open_frame(bytes, JOURNAL_MAGIC, JOURNAL_VERSION)?;
        let mut r = ByteReader::new(payload);
        let j = Journal::decode_payload(&mut r, reg)?;
        r.expect_done()?;
        Ok(j)
    }

    /// Decode just the payload (counterpart of [`Journal::encode_payload`]).
    pub fn decode_payload(
        r: &mut ByteReader,
        reg: &mut ClassRegistry,
    ) -> Result<Journal, SnapshotError> {
        let n = r.count()?;
        let mut ops = Vec::new();
        for _ in 0..n {
            let op = match r.u8()? {
                0 => {
                    let wme = r.wme()?;
                    let id = WmeId(r.u32()?);
                    SnapOp::AddWme { wme, id }
                }
                1 => SnapOp::RemoveWme { id: WmeId(r.u32()?) },
                2 => {
                    let m = r.count()?;
                    let mut changes = Vec::new();
                    for _ in 0..m {
                        let id = WmeId(r.u32()?);
                        let delta = r.i64()?;
                        let delta = i32::try_from(delta).map_err(|_| {
                            SnapshotError::Corrupt(format!("delta {delta} overflows i32"))
                        })?;
                        changes.push((id, delta));
                    }
                    SnapOp::RunChanges { changes }
                }
                3 => {
                    let text = r.str()?;
                    let prod = parse_production(&text, reg).map_err(|e| {
                        SnapshotError::Corrupt(format!("production does not parse: {e}"))
                    })?;
                    let org = r.org()?;
                    SnapOp::AddProd { prod: Arc::new(prod), org }
                }
                4 => {
                    let prod_idx = r.u32()?;
                    let org = r.org()?;
                    SnapOp::Reorg { prod_idx, org }
                }
                t => return Err(SnapshotError::Corrupt(format!("op tag {t}"))),
            };
            ops.push(op);
        }
        Ok(Journal { ops })
    }

    /// Replay against a frozen topology: a fresh session engine re-runs
    /// every op through the same deterministic APIs that recorded them,
    /// reconstructing `MatchState` + `SessionNet` exactly.
    pub fn replay(&self, topo: Arc<Topology>) -> Result<SerialEngine<SessionNet>, SnapshotError> {
        let mut eng = SerialEngine::with_state(SessionNet::new(topo), MatchState::new());
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                SnapOp::AddWme { wme, id } => {
                    let (got, _) = eng.state.store.add(wme.clone());
                    if got != *id {
                        return Err(SnapshotError::Replay(format!(
                            "op {i}: store assigned {got:?}, log recorded {id:?}"
                        )));
                    }
                }
                SnapOp::RemoveWme { id } => {
                    if eng.state.store.remove(*id).is_none() {
                        return Err(SnapshotError::Replay(format!(
                            "op {i}: remove of dead/unknown {id:?}"
                        )));
                    }
                }
                SnapOp::RunChanges { changes } => {
                    eng.run_cycle(changes.clone(), Phase::Match);
                }
                SnapOp::AddProd { prod, org } => {
                    eng.add_production(prod.clone(), org.clone()).map_err(|e| {
                        SnapshotError::Replay(format!("op {i}: chunk rebuild failed: {e}"))
                    })?;
                }
                SnapOp::Reorg { prod_idx, org } => {
                    eng.reorganize_production(*prod_idx, org.clone()).map_err(|e| {
                        SnapshotError::Replay(format!("op {i}: reorganization failed: {e}"))
                    })?;
                }
            }
        }
        Ok(eng)
    }
}

/// A session engine that records its mutations into a [`Journal`].
///
/// This is the serving layer's engine: when journaling is on, hibernation
/// is `journal.encode(...)` and resume is [`JournaledSession::resume`].
/// With journaling off (`journal == None`) it is a zero-cost pass-through
/// over the plain [`SerialEngine`], so a serve run without tiering behaves
/// identically to one that never heard of snapshots.
pub struct JournaledSession {
    /// The wrapped deterministic engine.
    pub eng: SerialEngine<SessionNet>,
    /// The delta log; `None` disables recording.
    pub journal: Option<Journal>,
}

impl JournaledSession {
    /// Fresh session over a frozen topology.
    pub fn fresh(topo: Arc<Topology>, journaled: bool) -> JournaledSession {
        JournaledSession {
            eng: SerialEngine::with_state(SessionNet::new(topo), MatchState::new()),
            journal: journaled.then(Journal::default),
        }
    }

    /// Resume from a decoded journal: replay it against `topo`, keeping the
    /// journal attached so the resumed session can hibernate again later.
    pub fn resume(topo: Arc<Topology>, journal: Journal) -> Result<JournaledSession, SnapshotError> {
        let eng = journal.replay(topo)?;
        Ok(JournaledSession { eng, journal: Some(journal) })
    }

    /// The recorded log, when journaling is on.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    #[inline]
    fn record(&mut self, op: impl FnOnce() -> SnapOp) {
        if let Some(j) = &mut self.journal {
            j.ops.push(op());
        }
    }

    /// Journaled `store.add`.
    pub fn add_wme(&mut self, w: Wme) -> (WmeId, psme_ops::TimeTag) {
        let journaling = self.journal.is_some();
        let wme = journaling.then(|| w.clone());
        let (id, tag) = self.eng.state.store.add(w);
        if let Some(wme) = wme {
            self.record(|| SnapOp::AddWme { wme, id });
        }
        (id, tag)
    }

    /// Journaled `store.remove`. Dead/unknown ids are not recorded (they
    /// did not mutate the store).
    pub fn remove_wme(&mut self, id: WmeId) -> bool {
        let removed = self.eng.state.store.remove(id).is_some();
        if removed {
            self.record(|| SnapOp::RemoveWme { id });
        }
        removed
    }

    /// Journaled `run_cycle(changes, Phase::Match)`.
    pub fn run_changes(&mut self, changes: Vec<(WmeId, i32)>) -> crate::serial::CycleOutcome {
        if self.journal.is_some() {
            let recorded = changes.clone();
            self.record(|| SnapOp::RunChanges { changes: recorded });
        }
        self.eng.run_cycle(changes, Phase::Match)
    }

    /// Journaled `apply_changes` (registers then matches, like
    /// [`SerialEngine::apply_changes`]).
    pub fn apply_changes(
        &mut self,
        adds: Vec<Wme>,
        removes: Vec<WmeId>,
    ) -> crate::serial::CycleOutcome {
        let mut changes: Vec<(WmeId, i32)> = Vec::with_capacity(adds.len() + removes.len());
        for w in adds {
            let (id, _) = self.add_wme(w);
            changes.push((id, 1));
        }
        for id in removes {
            if self.remove_wme(id) {
                changes.push((id, -1));
            }
        }
        self.run_changes(changes)
    }

    /// Journaled `add_production`. Failed builds are not recorded (the
    /// overlay rolled back; replaying the failure would poison resume).
    pub fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<crate::serial::AddOutcome, crate::build::BuildError> {
        let out = self.eng.add_production(prod.clone(), org.clone())?;
        self.record(|| SnapOp::AddProd { prod, org });
        Ok(out)
    }

    /// Journaled `reorganize_production`. Like failed chunk builds, failed
    /// rebuilds roll back and are not recorded.
    pub fn reorganize_production(
        &mut self,
        prod_idx: u32,
        org: NetworkOrg,
    ) -> Result<crate::serial::ReorgOutcome, crate::build::BuildError> {
        let out = self.eng.reorganize_production(prod_idx, org.clone())?;
        self.record(|| SnapOp::Reorg { prod_idx, org });
        Ok(out)
    }
}

impl std::fmt::Debug for JournaledSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JournaledSession({:?}, {} journaled ops)",
            self.eng,
            self.journal.as_ref().map(|j| j.ops.len()).unwrap_or(0)
        )
    }
}

/// Structural digest of a session engine's complete observable match state:
/// every stored wme (content, tag, liveness), every node's left/right token
/// memory, the overlay's shape and splices, and the current instantiations.
/// Two engines with equal digests are bit-for-bit interchangeable for
/// everything downstream code reads — this is what the snapshot round-trip
/// property pins.
pub fn session_digest(eng: &SerialEngine<SessionNet>) -> u64 {
    use crate::view::ReteView;
    let mut w = ByteWriter::new();
    let store = &eng.state.store;
    w.u64(store.total_count() as u64);
    w.u64(store.live_count() as u64);
    for id in 0..store.total_count() as u32 {
        let id = WmeId(id);
        w.wme(store.get(id));
        w.u64(store.tag(id).0);
        w.bool(store.is_alive(id));
    }
    let net = &eng.net;
    w.u64(net.num_nodes() as u64);
    w.u64(net.num_prods() as u64);
    w.u64(net.overlay_nodes() as u64);
    w.u64(net.overlay_prods() as u64);
    w.u64(net.splice_edges() as u64);
    for id in 0..net.num_nodes() as u32 {
        for &(child, side) in net.node(id).out_edges.iter().chain(net.extra_out_edges(id)) {
            w.u32(child);
            w.u8(side as u8);
        }
        for sym in net.extra_prod_names_of(id) {
            w.sym(*sym);
        }
        for side in [false, true] {
            let mut toks = if side {
                eng.state.mem.right_tokens_of(id)
            } else {
                eng.state.mem.left_tokens_of(id)
            };
            toks.sort_by(|a, b| (a.0.wmes(), a.1).cmp(&(b.0.wmes(), b.1)));
            w.u64(toks.len() as u64);
            for (t, weight) in toks {
                w.u64(t.wmes().len() as u64);
                for &wid in t.wmes() {
                    w.u32(wid.0);
                }
                w.i64(weight as i64);
            }
        }
    }
    for p in 0..net.num_prods() as u32 {
        w.sym(net.prod_info(p).production.name);
    }
    for inst in eng.current_instantiations() {
        w.sym(inst.prod);
        for (&id, &tag) in inst.wmes.iter().zip(inst.tags.iter()) {
            w.u32(id.0);
            w.u64(tag.0);
        }
    }
    fnv1a64(&w.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReteNetwork;
    use psme_ops::parse_wme;

    fn topo(reg: &mut ClassRegistry) -> Arc<Topology> {
        reg.declare_str("a", &["x", "y"]);
        reg.declare_str("b", &["x", "y"]);
        let mut net = ReteNetwork::new();
        let p = parse_production("(p base (a ^x <v>) (b ^x <v>) --> (halt))", reg).unwrap();
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        Topology::freeze(net)
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(3.25);
        w.str("hé");
        w.value(Value::Int(-9));
        w.value(Value::Nil);
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 3.25);
        assert_eq!(r.str().unwrap(), "hé");
        assert_eq!(r.value().unwrap(), Value::Int(-9));
        assert_eq!(r.value().unwrap(), Value::Nil);
        r.expect_done().unwrap();
        assert_eq!(r.u8(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn frame_rejects_tampering_with_typed_errors() {
        let good = seal_frame(JOURNAL_MAGIC, JOURNAL_VERSION, b"payload".to_vec());
        assert!(open_frame(&good, JOURNAL_MAGIC, JOURNAL_VERSION).is_ok());
        // Wrong magic.
        let mut b = good.clone();
        b[0] ^= 0xff;
        assert_eq!(open_frame(&b, JOURNAL_MAGIC, JOURNAL_VERSION), Err(SnapshotError::BadMagic));
        // Future version.
        let b = seal_frame(JOURNAL_MAGIC, JOURNAL_VERSION + 9, b"payload".to_vec());
        assert_eq!(
            open_frame(&b, JOURNAL_MAGIC, JOURNAL_VERSION),
            Err(SnapshotError::UnsupportedVersion(JOURNAL_VERSION + 9))
        );
        // Truncation at every prefix length.
        for cut in 0..good.len() {
            assert!(open_frame(&good[..cut], JOURNAL_MAGIC, JOURNAL_VERSION).is_err());
        }
        // Payload flip.
        let mut b = good.clone();
        b[18] ^= 0x01;
        assert_eq!(
            open_frame(&b, JOURNAL_MAGIC, JOURNAL_VERSION),
            Err(SnapshotError::ChecksumMismatch)
        );
        // Trailing garbage.
        let mut b = good.clone();
        b.push(0);
        assert!(matches!(
            open_frame(&b, JOURNAL_MAGIC, JOURNAL_VERSION),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn journal_round_trips_and_replays() {
        let mut reg = ClassRegistry::new();
        let topo = topo(&mut reg);
        let mut live = JournaledSession::fresh(topo.clone(), true);
        let w1 = parse_wme("(a ^x 1 ^y 2)", &reg).unwrap();
        let w2 = parse_wme("(b ^x 1)", &reg).unwrap();
        let (id1, _) = live.add_wme(w1);
        let (id2, _) = live.add_wme(w2);
        live.run_changes(vec![(id1, 1), (id2, 1)]);
        let chunk =
            parse_production("(p chunk*1 (a ^x <v>) (b ^x <v>) (a ^y <w>) --> (halt))", &mut reg)
                .unwrap();
        live.add_production(Arc::new(chunk), NetworkOrg::Linear).unwrap();
        live.remove_wme(id2);
        live.run_changes(vec![(id2, -1)]);

        let bytes = live.journal().unwrap().encode(&reg);
        let decoded = Journal::decode(&bytes, &mut reg).unwrap();
        let resumed = JournaledSession::resume(topo, decoded).unwrap();
        assert_eq!(session_digest(&live.eng), session_digest(&resumed.eng));
        // And the resumed session re-encodes to the identical bytes.
        assert_eq!(resumed.journal().unwrap().encode(&reg), bytes);
    }

    #[test]
    fn journaled_reorg_round_trips_and_replays() {
        let mut reg = ClassRegistry::new();
        reg.declare_str("anchor", &["id"]);
        reg.declare_str("item", &["grp", "anchor", "val"]);
        let mut net = ReteNetwork::new();
        let p = parse_production(
            "(p cross (anchor ^id <a>)
                      (item ^grp 1 ^anchor <a> ^val <v1>)
                      (item ^grp 2 ^anchor <a> ^val <v2>)
                      (item ^grp 3 ^anchor <a> ^val <v3>)
               --> (halt))",
            &mut reg,
        )
        .unwrap();
        let groups = crate::bilinear::plan_bilinear(&p, 1);
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        let topo = Topology::freeze(net);
        let mut live = JournaledSession::fresh(topo.clone(), true);
        let mut changes = Vec::new();
        for g in 1..=3 {
            for v in 0..4 {
                let (id, _) =
                    live.add_wme(parse_wme(&format!("(item ^grp {g} ^anchor a ^val {v})"), &reg).unwrap());
                changes.push((id, 1));
            }
        }
        let (id, _) = live.add_wme(parse_wme("(anchor ^id a)", &reg).unwrap());
        changes.push((id, 1));
        live.run_changes(changes);
        let groups = groups.expect("cross production splits");
        live.reorganize_production(0, NetworkOrg::Bilinear(groups)).unwrap();
        // Keep matching after the rebuild so replay exercises the rebuilt net.
        let (id, _) = live.add_wme(parse_wme("(item ^grp 1 ^anchor a ^val 9)", &reg).unwrap());
        live.run_changes(vec![(id, 1)]);

        let bytes = live.journal().unwrap().encode(&reg);
        let decoded = Journal::decode(&bytes, &mut reg).unwrap();
        let resumed = JournaledSession::resume(topo, decoded).unwrap();
        assert_eq!(session_digest(&live.eng), session_digest(&resumed.eng));
        assert_eq!(resumed.journal().unwrap().encode(&reg), bytes);
    }

    #[test]
    fn replay_against_wrong_history_is_a_typed_error() {
        let mut reg = ClassRegistry::new();
        let topo = topo(&mut reg);
        let j = Journal {
            ops: vec![SnapOp::AddWme {
                wme: parse_wme("(a ^x 1)", &reg).unwrap(),
                id: WmeId(5), // a fresh store assigns 0
            }],
        };
        assert!(matches!(j.replay(topo.clone()), Err(SnapshotError::Replay(_))));
        let j = Journal { ops: vec![SnapOp::RemoveWme { id: WmeId(0) }] };
        assert!(matches!(j.replay(topo), Err(SnapshotError::Replay(_))));
    }
}
