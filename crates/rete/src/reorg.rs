//! Online detection of chain-dominant productions (§7 made incremental).
//!
//! The simulator's `diagnose_run` finds long-chain bottlenecks offline by
//! computing critical paths over full task traces — far too expensive for
//! the hot loop. [`ChainDetector`] is the online rendition: engines
//! accumulate a per-node activation-cost vector as a side effect of normal
//! matching (one add per beta task — see `SerialEngine::drain` and the
//! parallel workers), and at each quiescent decision boundary the detector
//! folds the vector into per-production EWMA cost shares. A production
//! whose *linear* chain holds a dominant share of recent match work — the
//! same 0.35 dominance constant `diagnose_cycle` classifies `LongChain`
//! with — gets a [`ReorgDecision`]: the bilinear grouping
//! ([`crate::bilinear::plan_bilinear`]) that most shortens its dependent
//! chain. The engine then performs the actual surgery at the barrier via
//! `reorganize_production`.
//!
//! Detection is heuristic and must therefore be *observationally
//! invisible*: a decision only ever changes the network organization, never
//! the match semantics, and the differential suites pin bit-for-bit
//! equality of conflict sets and learning runs with the detector on or off.

use crate::bilinear::{plan_bilinear, plan_chain_length};
use crate::network::NetworkOrg;
use crate::util::FxHashMap;
use crate::view::ReteView;
use psme_ops::Symbol;

/// Tuning knobs for the online chain detector.
#[derive(Clone, Debug, PartialEq)]
pub struct ReorgConfig {
    /// Ignore observation windows with less total match work than this
    /// (cost units ≈ activations + entries scanned + emissions). Mirrors
    /// `diagnose_cycle`'s small-cycle guard: tiny cycles prove nothing.
    pub min_window_cost: u64,
    /// EWMA cost share above which a linear production is chain-dominant.
    /// Calibrated to the simulator's `CHAIN_DOMINANCE` (0.35): a chain
    /// holding over a third of recent match work caps parallelism under 3×.
    pub dominance: f64,
    /// EWMA smoothing factor for per-production cost shares (weight of the
    /// newest window).
    pub ewma_alpha: f64,
    /// Quiescent polls to skip after firing a decision — lets the rebuilt
    /// network's costs settle before judging the next candidate.
    pub cooldown: u64,
    /// Largest constraint-prefix length tried when planning the bilinear
    /// grouping (k0 = 1..=max_k0).
    pub max_k0: usize,
    /// Only productions with at least this many positive CEs are
    /// candidates — short chains cannot blow up super-quadratically.
    pub min_ces: usize,
    /// Agent-level poll cadence: fold a window every `poll_stride`-th
    /// decision (the engine's cost vector keeps accumulating in between).
    /// Per-decision windows (stride 1) give the sharpest detection; wider
    /// strides amortize the fold's attribution walk on chunk-heavy nets at
    /// the price of detection latency and diluted per-window shares.
    pub poll_stride: u64,
}

impl Default for ReorgConfig {
    fn default() -> ReorgConfig {
        ReorgConfig {
            min_window_cost: 2_000,
            dominance: 0.35,
            ewma_alpha: 0.4,
            cooldown: 8,
            max_k0: 4,
            min_ces: 4,
            poll_stride: 1,
        }
    }
}

/// A reorganization the detector recommends.
#[derive(Clone, Debug, PartialEq)]
pub struct ReorgDecision {
    /// Production to rebuild (index is preserved across the rebuild).
    pub prod_idx: u32,
    /// Its name (for traces and per-agent org overrides).
    pub name: Symbol,
    /// The bilinear grouping to rebuild with.
    pub org: NetworkOrg,
    /// Dependent chain length before / after (positive CE counts).
    pub chain_before: usize,
    pub chain_after: usize,
    /// The production's EWMA share of match cost when flagged.
    pub share: f64,
}

/// Incremental chain-dominance detector. One per agent; feed it the
/// engine's per-node cost vector at quiescent boundaries via
/// [`ChainDetector::observe`].
#[derive(Clone, Debug)]
pub struct ChainDetector {
    cfg: ReorgConfig,
    /// Per-production EWMA share of window match cost.
    share: FxHashMap<u32, f64>,
    cooldown_left: u64,
    /// Decisions issued so far.
    pub decisions: u64,
    /// Cached name → production-index map, rebuilt only when the
    /// production count changes (it only grows — chunk adds — and a
    /// reorganization preserves its production's index). Rebuilding this
    /// every poll is what would make an armed-but-idle detector cost
    /// O(productions) per decision.
    idx_of: FxHashMap<Symbol, u32>,
    idx_prods: usize,
}

impl ChainDetector {
    /// New detector with the given tuning.
    pub fn new(cfg: ReorgConfig) -> ChainDetector {
        ChainDetector {
            cfg,
            share: FxHashMap::default(),
            cooldown_left: 0,
            decisions: 0,
            idx_of: FxHashMap::default(),
            idx_prods: usize::MAX,
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &ReorgConfig {
        &self.cfg
    }

    /// Fold one observation window (per-node accumulated costs since the
    /// last call; indices are node ids) and return a reorganization
    /// decision if some linear production's chain now dominates.
    ///
    /// Cost attribution: each node's cost is split evenly across the
    /// productions whose chains it serves (`prod_names` — the same
    /// bookkeeping node sharing maintains), so shared prefixes do not
    /// double-count.
    pub fn observe<N: ReteView + ?Sized>(
        &mut self,
        costs: &[u64],
        net: &N,
    ) -> Option<ReorgDecision> {
        let total: u64 = costs.iter().sum();
        let window = costs
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c));
        self.observe_window(total, window, net)
    }

    /// [`ChainDetector::observe`] over a sparse window — only the nodes
    /// actually activated since the last poll, as `(node id, cost)` pairs.
    /// Engines that track touched nodes use this so an armed-but-idle
    /// detector costs O(active nodes) per quiescent poll, not O(network).
    pub fn observe_sparse<N: ReteView + ?Sized>(
        &mut self,
        window: &[(u32, u64)],
        net: &N,
    ) -> Option<ReorgDecision> {
        let total: u64 = window.iter().map(|&(_, c)| c).sum();
        self.observe_window(total, window.iter().copied(), net)
    }

    fn observe_window<N: ReteView + ?Sized>(
        &mut self,
        total: u64,
        window_costs: impl Iterator<Item = (u32, u64)>,
        net: &N,
    ) -> Option<ReorgDecision> {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return None;
        }
        if total < self.cfg.min_window_cost {
            return None;
        }
        // name → production index, for prod_names attribution.
        if self.idx_prods != net.num_prods() {
            self.idx_of.clear();
            for p in 0..net.num_prods() as u32 {
                self.idx_of.insert(net.prod_info(p).production.name, p);
            }
            self.idx_prods = net.num_prods();
        }
        let idx_of = &self.idx_of;
        let mut window: FxHashMap<u32, f64> = FxHashMap::default();
        for (id, c) in window_costs {
            let names = net.node(id).prod_names.as_slice();
            if names.is_empty() {
                continue;
            }
            let each = c as f64 / names.len() as f64;
            for name in names {
                if let Some(&p) = idx_of.get(name) {
                    *window.entry(p).or_insert(0.0) += each;
                }
            }
        }
        // EWMA fold: productions absent from this window decay toward 0.
        let a = self.cfg.ewma_alpha;
        for s in self.share.values_mut() {
            *s *= 1.0 - a;
        }
        for (p, c) in window {
            *self.share.entry(p).or_insert(0.0) += a * (c / total as f64);
        }
        // Flag the dominant linear candidate, if any.
        let mut best: Option<(u32, f64)> = None;
        for (&p, &s) in &self.share {
            if s > self.cfg.dominance && best.map(|(_, bs)| s > bs).unwrap_or(true) {
                best = Some((p, s));
            }
        }
        let (prod_idx, share) = best?;
        let info = net.prod_info(prod_idx);
        if info.org != NetworkOrg::Linear {
            return None;
        }
        let prod = &info.production;
        // Negated / NCC chains are deferred (see ROADMAP): reorganize only
        // all-positive chains of useful length.
        if !prod.ces.iter().all(|ce| ce.is_pos()) || prod.ces.len() < self.cfg.min_ces {
            // Never a candidate: stop re-evaluating it every window.
            self.share.remove(&prod_idx);
            return None;
        }
        let chain_before = prod.ces.len();
        let mut plan: Option<(Vec<Vec<usize>>, usize)> = None;
        for k0 in 1..=self.cfg.max_k0.min(chain_before.saturating_sub(1)) {
            if let Some(groups) = plan_bilinear(prod, k0) {
                // A two-group "bilinear" is the linear chain plus spine
                // overhead; demand a real split.
                if groups.len() < 3 {
                    continue;
                }
                let len = plan_chain_length(&groups);
                if plan.as_ref().map(|&(_, best)| len < best).unwrap_or(true) {
                    plan = Some((groups, len));
                }
            }
        }
        let (groups, chain_after) = plan?;
        if chain_after >= chain_before {
            self.share.remove(&prod_idx);
            return None;
        }
        self.share.remove(&prod_idx);
        self.cooldown_left = self.cfg.cooldown;
        self.decisions += 1;
        Some(ReorgDecision {
            prod_idx,
            name: prod.name,
            org: NetworkOrg::Bilinear(groups),
            chain_before,
            chain_after,
            share,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReteNetwork;
    use crate::serial::SerialEngine;
    use psme_ops::{parse_production, parse_wme, ClassRegistry};
    use std::sync::Arc;

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("anchor", &["id"]);
        r.declare_str("item", &["grp", "anchor", "val"]);
        r.declare_str("partner", &["grp", "anchor", "val"]);
        r
    }

    fn chain_prod(r: &mut ClassRegistry) -> Arc<psme_ops::Production> {
        Arc::new(
            parse_production(
                "(p cross (anchor ^id <a>)
                          (item ^grp 1 ^anchor <a> ^val <v1>)
                          (item ^grp 2 ^anchor <a> ^val <v2>)
                          (partner ^grp 1 ^anchor <a> ^val <v1>)
                          (partner ^grp 2 ^anchor <a> ^val <v2>)
                   --> (halt))",
                r,
            )
            .unwrap(),
        )
    }

    #[test]
    fn dominant_linear_chain_is_flagged_with_a_shorter_plan() {
        let mut r = reg();
        let mut e = SerialEngine::new(ReteNetwork::new());
        e.add_production(chain_prod(&mut r), NetworkOrg::Linear).unwrap();
        e.set_cost_profiling(true);
        for i in 0..24 {
            e.apply_changes(
                vec![
                    parse_wme(&format!("(item ^grp 1 ^anchor a ^val {i})"), &r).unwrap(),
                    parse_wme(&format!("(item ^grp 2 ^anchor a ^val {i})"), &r).unwrap(),
                    parse_wme(&format!("(partner ^grp 1 ^anchor a ^val {i})"), &r).unwrap(),
                    parse_wme(&format!("(partner ^grp 2 ^anchor a ^val {i})"), &r).unwrap(),
                ],
                vec![],
            );
        }
        e.apply_changes(vec![parse_wme("(anchor ^id a)", &r).unwrap()], vec![]);
        let mut det = ChainDetector::new(ReorgConfig {
            min_window_cost: 100,
            ..ReorgConfig::default()
        });
        let d = e.poll_reorg(&mut det).expect("cross-product chain must be flagged");
        assert_eq!(d.prod_idx, 0);
        assert!(d.chain_after < d.chain_before, "{d:?}");
        assert!(matches!(d.org, NetworkOrg::Bilinear(_)));
        assert!(d.share > 0.35);
        // Cooldown: the very next window stays quiet.
        assert!(e.poll_reorg(&mut det).is_none());
    }

    #[test]
    fn acting_on_a_decision_is_observationally_invisible() {
        let mut r = reg();
        let mut e = SerialEngine::new(ReteNetwork::new());
        e.add_production(chain_prod(&mut r), NetworkOrg::Linear).unwrap();
        e.set_cost_profiling(true);
        for i in 0..12 {
            e.apply_changes(
                vec![
                    parse_wme(&format!("(item ^grp 1 ^anchor a ^val {i})"), &r).unwrap(),
                    parse_wme(&format!("(item ^grp 2 ^anchor a ^val {i})"), &r).unwrap(),
                    parse_wme(&format!("(partner ^grp 1 ^anchor a ^val {i})"), &r).unwrap(),
                    parse_wme(&format!("(partner ^grp 2 ^anchor a ^val {i})"), &r).unwrap(),
                ],
                vec![],
            );
        }
        e.apply_changes(vec![parse_wme("(anchor ^id a)", &r).unwrap()], vec![]);
        let mut det =
            ChainDetector::new(ReorgConfig { min_window_cost: 100, ..ReorgConfig::default() });
        let d = e.poll_reorg(&mut det).unwrap();
        let sort = |mut v: Vec<psme_ops::Instantiation>| {
            v.sort_by(|a, b| (a.prod, &a.wmes).cmp(&(b.prod, &b.wmes)));
            v
        };
        let before = sort(e.current_instantiations());
        let nodes_before = e.net.num_nodes();
        let out = e.reorganize_production(d.prod_idx, d.org.clone()).unwrap();
        assert!(out.retired > 0, "old chain interior must retire");
        assert_eq!(e.net.prod_info(0).org, d.org);
        assert_eq!(sort(e.current_instantiations()), before);
        // Matching continues correctly on the rebuilt network.
        let cs = e
            .apply_changes(
                vec![
                    parse_wme("(item ^grp 1 ^anchor a ^val fresh)", &r).unwrap(),
                    parse_wme("(partner ^grp 1 ^anchor a ^val fresh)", &r).unwrap(),
                ],
                vec![],
            )
            .cs;
        // New g1 pair crosses all 12 g2 pairs; nothing retracts.
        assert_eq!(cs.added.len(), 12);
        assert!(cs.removed.is_empty());
        // Retired nodes are unplugged, not leaked into traversals.
        assert!(e.net.num_nodes() > nodes_before);
        assert_eq!(e.net.retired_nodes(), out.retired);
    }

    #[test]
    fn quiet_windows_and_short_chains_stay_unflagged() {
        let mut r = reg();
        let mut e = SerialEngine::new(ReteNetwork::new());
        let short =
            parse_production("(p short (anchor ^id <a>) (item ^anchor <a>) --> (halt))", &mut r)
                .unwrap();
        e.add_production(Arc::new(short), NetworkOrg::Linear).unwrap();
        e.set_cost_profiling(true);
        let mut det = ChainDetector::new(ReorgConfig::default());
        // No work at all: below min_window_cost.
        assert!(e.poll_reorg(&mut det).is_none());
        // Work on a 2-CE chain: dominant but too short to reorganize.
        for i in 0..50 {
            e.apply_changes(
                vec![parse_wme(&format!("(item ^anchor a ^val {i})"), &r).unwrap()],
                vec![],
            );
        }
        let mut eager = ChainDetector::new(ReorgConfig {
            min_window_cost: 1,
            min_ces: 4,
            ..ReorgConfig::default()
        });
        assert!(e.poll_reorg(&mut eager).is_none());
    }
}
