//! The hashed token memories.
//!
//! Reproduces the PSM-E memory organization (§6.1): "One hash table is used
//! for all the left memory nodes in the network and the other is used for
//! all the right memory nodes. The hash function … takes into account
//! (1) the variable bindings tested for equality at the two-input node, and
//! (2) the unique node-ID of the destination two-input node. … A single
//! lock controls the access to a line, i.e., a pair of corresponding buckets
//! from left and right hash tables."
//!
//! Holding the line lock while inserting one's own token *and* scanning the
//! opposite bucket makes simultaneous left/right arrivals at a node
//! linearizable — no joined pair is missed or double-counted.
//!
//! Entries carry signed *weights* (counting Rete): a delete that overtakes
//! its add simply leaves a −1 entry that the add later annihilates. Between
//! quiescent points every weight is 0 or 1; the transient negatives only
//! exist while a cycle's tasks are in flight. Left entries additionally
//! carry `m`, the number (summed weight) of matching right tokens — the
//! not-node counter of §2.2.
//!
//! ## Hot-path organization
//!
//! Beyond the paper's layout, the probe path is organized for constant
//! factors:
//!
//! * **Hash-first probes.** Every entry stores the 64-bit hash of its key,
//!   computed once when the activation arrives. A probe compares hashes
//!   before any structural [`Key`] compare; mismatches are counted as
//!   `hash_rejects` and cost one word compare.
//! * **Per-node grouping.** Each line keeps its entries *grouped by
//!   destination node* (ascending node id, insertion order within a node).
//!   A probe binary-searches for its node's run and examines only real
//!   candidates; co-hashed entries of other nodes are never touched. The
//!   pre-overhaul whole-line scan survives behind `use_index = false` as
//!   the differential oracle (the `classify_linear` precedent) — it walks
//!   the entire line, counting the non-candidates it filters as
//!   `entries_skipped`.
//! * **Inline keys.** [`Key`] stores up to [`KEY_INLINE`] elements inline
//!   and only spills longer keys to the heap, so `make_key` on the
//!   activation hot path allocates nothing for typical join keys.
//! * **Padded lines.** Each line is `#[repr(align(64))]` so neighbouring
//!   spinlocks never share a cache line (no false sharing between workers
//!   probing adjacent lines).
//! * **Incremental housekeeping.** A per-line dirty flag (readable without
//!   the lock) marks lines written this cycle; [`MemoryTable::end_cycle`]
//!   compacts and counter-resets only those, instead of locking all 2^k
//!   lines at every cycle boundary.

use crate::node::NodeId;
use crate::sync::{SpinGuard, SpinLock};
use crate::token::Token;
use crate::util::fxhash;
use psme_ops::{Value, WmeId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One element of a memory key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KeyElem {
    /// A field value (from an equality variable test).
    V(Value),
    /// A wme id (from an identity constraint).
    W(WmeId),
}

/// Keys up to this many elements are stored inline (no heap allocation on
/// the activation hot path); longer keys spill to a boxed slice.
pub const KEY_INLINE: usize = 4;

const KEY_FILL: KeyElem = KeyElem::W(WmeId(0));

#[derive(Clone, Debug)]
enum KeyRepr {
    /// `len` live elements of `elems`; the rest is padding, never read.
    Inline { len: u8, elems: [KeyElem; KEY_INLINE] },
    /// Spilled storage for keys longer than [`KEY_INLINE`].
    Spill(Box<[KeyElem]>),
}

/// A computed memory key: the equality bindings of a token at a node.
///
/// Equality, hashing and ordering are all over [`Key::elems`]; whether the
/// elements live inline or spilled is invisible.
#[derive(Clone, Debug)]
pub struct Key(KeyRepr);

impl Key {
    /// The empty key (P nodes, nodes with no equality bindings).
    pub fn empty() -> Key {
        Key(KeyRepr::Inline { len: 0, elems: [KEY_FILL; KEY_INLINE] })
    }

    /// Build from an iterator whose exact length is known up front —
    /// inline (allocation-free) when `len <= KEY_INLINE`.
    pub fn build(len: usize, it: impl Iterator<Item = KeyElem>) -> Key {
        if len <= KEY_INLINE {
            let mut elems = [KEY_FILL; KEY_INLINE];
            let mut n = 0usize;
            for e in it {
                elems[n] = e;
                n += 1;
            }
            debug_assert_eq!(n, len, "iterator length mismatch");
            Key(KeyRepr::Inline { len: n as u8, elems })
        } else {
            Key(KeyRepr::Spill(it.collect()))
        }
    }

    /// Build from a slice.
    pub fn from_slice(elems: &[KeyElem]) -> Key {
        Key::build(elems.len(), elems.iter().copied())
    }

    /// The key elements.
    #[inline]
    pub fn elems(&self) -> &[KeyElem] {
        match &self.0 {
            KeyRepr::Inline { len, elems } => &elems[..*len as usize],
            KeyRepr::Spill(b) => b,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems().len()
    }

    /// `true` for the empty key.
    pub fn is_empty(&self) -> bool {
        self.elems().is_empty()
    }
}

impl Default for Key {
    fn default() -> Key {
        Key::empty()
    }
}

impl PartialEq for Key {
    #[inline]
    fn eq(&self, other: &Key) -> bool {
        self.elems() == other.elems()
    }
}

impl Eq for Key {}

impl std::hash::Hash for Key {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.elems().hash(state);
    }
}

/// The 64-bit hash of a key — computed once per activation, stored in every
/// entry, and compared before any structural [`Key`] compare.
#[inline]
pub fn key_hash(key: &Key) -> u64 {
    fxhash(key)
}

/// An entry in a left memory.
#[derive(Clone, Debug)]
pub struct LeftEntry {
    /// Destination node.
    pub node: NodeId,
    /// Hash of `key` (hash-first probe rejection).
    pub hash: u64,
    /// Equality-binding key.
    pub key: Key,
    /// The stored token.
    pub token: Token,
    /// Signed multiplicity (1 at quiescence).
    pub weight: i32,
    /// Not-node counter: summed weight of matching right tokens.
    pub m: i32,
}

/// An entry in a right memory.
#[derive(Clone, Debug)]
pub struct RightEntry {
    /// Destination node.
    pub node: NodeId,
    /// Hash of `key` (hash-first probe rejection).
    pub hash: u64,
    /// Equality-binding key.
    pub key: Key,
    /// The stored token (a unit token for alpha-sourced inputs).
    pub token: Token,
    /// Signed multiplicity (1 at quiescence).
    pub weight: i32,
}

/// The pair of corresponding left/right buckets guarded by one lock.
///
/// Both vectors are kept *grouped by destination node* (ascending node id,
/// insertion order within a node): probes binary-search for their node's
/// run, and removals are order-preserving so grouping is an invariant, not
/// a sometimes-true property.
#[derive(Default, Debug)]
pub struct LineData {
    /// Left-memory entries hashed to this line, grouped by node.
    pub left: Vec<LeftEntry>,
    /// Right-memory entries hashed to this line, grouped by node.
    pub right: Vec<RightEntry>,
    /// Left-token accesses this cycle (Figure 6-2 instrumentation).
    pub left_accesses: u64,
    /// Right-token accesses this cycle.
    pub right_accesses: u64,
}

/// Find `node`'s contiguous run in a grouped slice: `(start, end)`.
#[inline]
fn run_of<E>(v: &[E], node: NodeId, node_of: impl Fn(&E) -> NodeId) -> (usize, usize) {
    let start = v.partition_point(|e| node_of(e) < node);
    let len = v[start..].partition_point(|e| node_of(e) == node);
    (start, start + len)
}

impl LineData {
    /// The contiguous run of left entries for `node`.
    #[inline]
    pub fn left_run(&self, node: NodeId) -> (usize, usize) {
        run_of(&self.left, node, |e| e.node)
    }

    /// The contiguous run of right entries for `node`.
    #[inline]
    pub fn right_run(&self, node: NodeId) -> (usize, usize) {
        run_of(&self.right, node, |e| e.node)
    }

    /// Add `delta` to the weight of the left entry for `(node, token)`,
    /// creating it (at its node run's end, preserving grouping) or removing
    /// it at weight zero. With `use_index`, candidate entries are rejected
    /// on hash inequality before the structural token compare — sound
    /// because a node's key is a function of the token, so equal
    /// `(node, token)` implies equal hash.
    #[allow(clippy::too_many_arguments)]
    pub fn upsert_left(
        &mut self,
        node: NodeId,
        key: &Key,
        hash: u64,
        token: &Token,
        delta: i32,
        m: i32,
        use_index: bool,
    ) {
        let (s, e) = self.left_run(node);
        for i in s..e {
            let en = &self.left[i];
            if use_index && en.hash != hash {
                continue;
            }
            if en.token == *token {
                self.left[i].weight += delta;
                if self.left[i].weight == 0 {
                    // Order-preserving removal keeps the grouping invariant.
                    self.left.remove(i);
                }
                return;
            }
        }
        self.left.insert(
            e,
            LeftEntry { node, hash, key: key.clone(), token: token.clone(), weight: delta, m },
        );
    }

    /// Right-memory counterpart of [`Self::upsert_left`].
    pub fn upsert_right(
        &mut self,
        node: NodeId,
        key: &Key,
        hash: u64,
        token: &Token,
        delta: i32,
        use_index: bool,
    ) {
        let (s, e) = self.right_run(node);
        for i in s..e {
            let en = &self.right[i];
            if use_index && en.hash != hash {
                continue;
            }
            if en.token == *token {
                self.right[i].weight += delta;
                if self.right[i].weight == 0 {
                    self.right.remove(i);
                }
                return;
            }
        }
        self.right.insert(
            e,
            RightEntry { node, hash, key: key.clone(), token: token.clone(), weight: delta },
        );
    }

    /// Assert the grouping invariant (debug/test helper).
    pub fn check_grouped(&self) {
        assert!(
            self.left.windows(2).all(|w| w[0].node <= w[1].node),
            "left entries not grouped by node"
        );
        assert!(
            self.right.windows(2).all(|w| w[0].node <= w[1].node),
            "right entries not grouped by node"
        );
    }
}

/// One memory line: the spin-locked bucket pair plus its dirty flag,
/// padded to a cache line so adjacent locks never false-share.
#[repr(align(64))]
struct Line {
    lock: SpinLock<LineData>,
    /// Written this cycle? Readable without the lock — quiescent
    /// housekeeping skips clean lines entirely. The cycle barrier provides
    /// the happens-before edge, so relaxed ordering suffices.
    dirty: AtomicBool,
}

impl Line {
    fn new() -> Line {
        Line { lock: SpinLock::new(LineData::default()), dirty: AtomicBool::new(false) }
    }
}

/// The global memory table: `2^k` lines, each a [`SpinLock`]`<`[`LineData`]`>`.
pub struct MemoryTable {
    lines: Box<[Line]>,
    mask: u64,
    /// Probe through the per-node line index with hash-first rejection
    /// (default). `false` selects the reference whole-line scan with
    /// structural compares — the pre-overhaul behaviour, kept as the
    /// differential oracle and the cost baseline.
    pub use_index: bool,
    /// Total lines compacted by [`Self::end_cycle`] over the table's life.
    compacted_total: AtomicU64,
}

impl MemoryTable {
    /// Create with `lines` lines (rounded up to a power of two, min 1).
    pub fn new(lines: usize) -> MemoryTable {
        let n = lines.next_power_of_two().max(1);
        MemoryTable {
            lines: (0..n).map(|_| Line::new()).collect(),
            mask: (n - 1) as u64,
            use_index: true,
            compacted_total: AtomicU64::new(0),
        }
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// The line index for a node and a precomputed key hash.
    #[inline]
    pub fn line_of_hash(&self, node: NodeId, khash: u64) -> u32 {
        (fxhash(&(node, khash)) & self.mask) as u32
    }

    /// The line index for a node/key pair.
    #[inline]
    pub fn line_of(&self, node: NodeId, key: &Key) -> u32 {
        self.line_of_hash(node, key_hash(key))
    }

    /// Lock a line; returns the guard and the spin count.
    #[inline]
    pub fn lock(&self, line: u32) -> (SpinGuard<'_, LineData>, u64) {
        self.lines[line as usize].lock.lock()
    }

    /// Mark a line written this cycle (activation processing calls this
    /// while holding the line lock; [`Self::end_cycle`] clears it).
    #[inline]
    pub fn touch(&self, line: u32) {
        self.lines[line as usize].dirty.store(true, Ordering::Relaxed);
    }

    /// Quiescent housekeeping: for every line written since the last call,
    /// drop zero-weight entries, reset the access counters and clear the
    /// dirty flag. Clean lines are skipped without locking. Returns the
    /// number of lines compacted.
    pub fn end_cycle(&self) -> u64 {
        let mut n = 0u64;
        for l in self.lines.iter() {
            if !l.dirty.load(Ordering::Relaxed) {
                continue;
            }
            let (mut g, _) = l.lock.lock();
            g.left.retain(|e| e.weight != 0);
            g.right.retain(|e| e.weight != 0);
            g.left_accesses = 0;
            g.right_accesses = 0;
            l.dirty.store(false, Ordering::Relaxed);
            n += 1;
        }
        self.compacted_total.fetch_add(n, Ordering::Relaxed);
        n
    }

    /// Total lines compacted by [`Self::end_cycle`] so far.
    pub fn lines_compacted_total(&self) -> u64 {
        self.compacted_total.load(Ordering::Relaxed)
    }

    /// Reset the per-line access counters on **every** line (full sweep;
    /// [`Self::end_cycle`] is the incremental variant engines use).
    pub fn reset_access_counts(&self) {
        for l in self.lines.iter() {
            let (mut g, _) = l.lock.lock();
            g.left_accesses = 0;
            g.right_accesses = 0;
        }
    }

    /// Harvest `(left_accesses, right_accesses)` per line.
    pub fn access_counts(&self) -> Vec<(u64, u64)> {
        self.lines
            .iter()
            .map(|l| {
                let (g, _) = l.lock.lock();
                (g.left_accesses, g.right_accesses)
            })
            .collect()
    }

    /// Enumerate the stored left tokens of `node` with positive weight, as
    /// `(token, weight)` pairs — no per-unit-of-weight cloning (used by the
    /// state-update seeder and by tests). Locks lines one at a time;
    /// callers run at quiescence, where every weight is 1.
    pub fn left_tokens_of(&self, node: NodeId) -> Vec<(Token, i32)> {
        let mut out = Vec::new();
        for l in self.lines.iter() {
            let (g, _) = l.lock.lock();
            let (s, e) = g.left_run(node);
            for en in g.left[s..e].iter().filter(|en| en.weight > 0) {
                out.push((en.token.clone(), en.weight));
            }
        }
        out
    }

    /// Enumerate the stored right tokens of `node` with positive weight, as
    /// `(token, weight)` pairs.
    pub fn right_tokens_of(&self, node: NodeId) -> Vec<(Token, i32)> {
        let mut out = Vec::new();
        for l in self.lines.iter() {
            let (g, _) = l.lock.lock();
            let (s, e) = g.right_run(node);
            for en in g.right[s..e].iter().filter(|en| en.weight > 0) {
                out.push((en.token.clone(), en.weight));
            }
        }
        out
    }

    /// Assert the quiescence invariant: every weight is 0 or 1, every
    /// not-counter is non-negative, every stored hash matches its key, and
    /// every line is grouped by node. Panics otherwise (used by tests and
    /// debug assertions at cycle boundaries).
    pub fn assert_quiescent(&self) {
        for (i, l) in self.lines.iter().enumerate() {
            let (g, _) = l.lock.lock();
            g.check_grouped();
            for e in &g.left {
                assert!(
                    e.weight == 0 || e.weight == 1,
                    "line {i}: left entry weight {} for node {} {:?}",
                    e.weight,
                    e.node,
                    e.token
                );
                assert!(e.m >= 0, "line {i}: negative not-counter {} node {}", e.m, e.node);
                assert_eq!(e.hash, key_hash(&e.key), "line {i}: stale left hash node {}", e.node);
            }
            for e in &g.right {
                assert!(
                    e.weight == 0 || e.weight == 1,
                    "line {i}: right entry weight {} for node {} {:?}",
                    e.weight,
                    e.node,
                    e.token
                );
                assert_eq!(e.hash, key_hash(&e.key), "line {i}: stale right hash node {}", e.node);
            }
        }
    }

    /// Drop every entry destined for one of `nodes` (**sorted** node ids) —
    /// the memory half of retiring a reorganized production's old chain.
    /// Order-preserving removal keeps the grouping invariant; callers run at
    /// a quiescent point, so no activation can race the purge.
    pub fn purge_nodes(&self, nodes: &[NodeId]) {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "purge list must be sorted");
        if nodes.is_empty() {
            return;
        }
        for l in self.lines.iter() {
            let (mut g, _) = l.lock.lock();
            g.left.retain(|e| nodes.binary_search(&e.node).is_err());
            g.right.retain(|e| nodes.binary_search(&e.node).is_err());
        }
    }

    /// Drop zero-weight entries on every line (full-sweep housekeeping;
    /// tests use it, engines use the incremental [`Self::end_cycle`]).
    pub fn compact(&self) {
        for l in self.lines.iter() {
            let (mut g, _) = l.lock.lock();
            g.left.retain(|e| e.weight != 0);
            g.right.retain(|e| e.weight != 0);
        }
    }
}

impl std::fmt::Debug for MemoryTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemoryTable({} lines)", self.lines.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> Key {
        Key::build(vals.len(), vals.iter().map(|&v| KeyElem::V(Value::Int(v))))
    }

    fn left(node: NodeId, k: Key, token: Token, weight: i32) -> LeftEntry {
        LeftEntry { node, hash: key_hash(&k), key: k, token, weight, m: 0 }
    }

    fn right(node: NodeId, k: Key, token: Token, weight: i32) -> RightEntry {
        RightEntry { node, hash: key_hash(&k), key: k, token, weight }
    }

    #[test]
    fn sizes_round_to_power_of_two() {
        assert_eq!(MemoryTable::new(1000).num_lines(), 1024);
        assert_eq!(MemoryTable::new(1).num_lines(), 1);
        assert_eq!(MemoryTable::new(0).num_lines(), 1);
    }

    #[test]
    fn line_of_is_stable_and_keyed() {
        let m = MemoryTable::new(64);
        let k1 = key(&[1, 2]);
        let k2 = key(&[1, 3]);
        assert_eq!(m.line_of(5, &k1), m.line_of(5, &k1));
        // different node or key generally maps elsewhere (not guaranteed for
        // any single pair, but these specific ones differ)
        let same = (m.line_of(5, &k1) == m.line_of(6, &k1)) && (m.line_of(5, &k1) == m.line_of(5, &k2));
        assert!(!same);
        // the precomputed-hash path is the same function
        assert_eq!(m.line_of(5, &k1), m.line_of_hash(5, key_hash(&k1)));
    }

    #[test]
    fn inline_and_spilled_keys_are_interchangeable() {
        // 4 elements stay inline, 5 spill; equality/hash/elems must not care.
        let short = key(&[1, 2, 3, 4]);
        let long = key(&[1, 2, 3, 4, 5]);
        assert!(matches!(short.0, KeyRepr::Inline { .. }));
        assert!(matches!(long.0, KeyRepr::Spill(_)));
        assert_eq!(short.len(), 4);
        assert_eq!(long.len(), 5);
        assert_ne!(short, long);
        let spilled_short = Key(KeyRepr::Spill(short.elems().into()));
        assert_eq!(short, spilled_short);
        assert_eq!(key_hash(&short), key_hash(&spilled_short));
        assert_eq!(fxhash(&short), fxhash(&spilled_short));
        assert!(Key::default().is_empty());
        assert_eq!(Key::from_slice(short.elems()), short);
    }

    #[test]
    fn lines_are_cache_line_padded() {
        assert_eq!(std::mem::align_of::<Line>(), 64, "one line per cache line");
        assert!(std::mem::size_of::<Line>().is_multiple_of(64));
    }

    #[test]
    fn token_enumeration_respects_node_and_weight() {
        let m = MemoryTable::new(4);
        let t1 = Token::unit(WmeId(1));
        let t2 = Token::unit(WmeId(2));
        let k = key(&[]);
        {
            let line = m.line_of(7, &k);
            let (mut g, _) = m.lock(line);
            g.left.push(left(7, k.clone(), t1.clone(), 1));
            g.left.push(left(7, k.clone(), t2.clone(), 0));
            g.left.push(left(8, k.clone(), t2.clone(), 1));
        }
        assert_eq!(m.left_tokens_of(7), vec![(t1, 1)]);
        assert_eq!(m.left_tokens_of(8), vec![(t2, 1)]);
        assert!(m.right_tokens_of(7).is_empty());
    }

    #[test]
    fn node_runs_are_found_by_binary_search() {
        let mut d = LineData::default();
        let k = key(&[]);
        for node in [2u32, 2, 5, 9, 9, 9] {
            d.left.push(left(node, k.clone(), Token::empty(), 1));
        }
        d.check_grouped();
        assert_eq!(d.left_run(2), (0, 2));
        assert_eq!(d.left_run(5), (2, 3));
        assert_eq!(d.left_run(9), (3, 6));
        assert_eq!(d.left_run(7), (3, 3), "absent node: empty run");
        assert_eq!(d.right_run(2), (0, 0));
    }

    #[test]
    fn compact_drops_zero_weight() {
        let m = MemoryTable::new(1);
        {
            let (mut g, _) = m.lock(0);
            g.right.push(right(1, key(&[]), Token::empty(), 0));
            g.right.push(right(1, key(&[]), Token::empty(), 1));
        }
        m.compact();
        let (g, _) = m.lock(0);
        assert_eq!(g.right.len(), 1);
    }

    #[test]
    fn end_cycle_touches_only_dirty_lines() {
        let m = MemoryTable::new(4);
        {
            let (mut g, _) = m.lock(1);
            g.left.push(left(3, key(&[]), Token::empty(), 0));
            g.left_accesses = 7;
        }
        m.touch(1);
        // Line 2 has state but was never marked dirty: it must be skipped.
        {
            let (mut g, _) = m.lock(2);
            g.right.push(right(4, key(&[]), Token::empty(), 0));
            g.right_accesses = 3;
        }
        assert_eq!(m.end_cycle(), 1, "only the dirty line is compacted");
        assert_eq!(m.lines_compacted_total(), 1);
        {
            let (g, _) = m.lock(1);
            assert!(g.left.is_empty(), "zero-weight entry dropped");
            assert_eq!(g.left_accesses, 0, "access counter reset");
        }
        {
            let (g, _) = m.lock(2);
            assert_eq!(g.right.len(), 1, "clean line untouched");
            assert_eq!(g.right_accesses, 3);
        }
        // The dirty flag was cleared: a second pass compacts nothing.
        assert_eq!(m.end_cycle(), 0);
        assert_eq!(m.lines_compacted_total(), 1);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn assert_quiescent_catches_bad_weights() {
        let m = MemoryTable::new(1);
        {
            let (mut g, _) = m.lock(0);
            g.left.push(left(1, key(&[]), Token::empty(), -1));
        }
        m.assert_quiescent();
    }

    #[test]
    #[should_panic(expected = "grouped")]
    fn assert_quiescent_catches_ungrouped_lines() {
        let m = MemoryTable::new(1);
        {
            let (mut g, _) = m.lock(0);
            g.left.push(left(9, key(&[]), Token::empty(), 1));
            g.left.push(left(3, key(&[]), Token::empty(), 1));
        }
        m.assert_quiescent();
    }

    #[test]
    fn access_counters_reset() {
        let m = MemoryTable::new(2);
        {
            let (mut g, _) = m.lock(0);
            g.left_accesses = 5;
        }
        assert_eq!(m.access_counts()[0].0, 5);
        m.reset_access_counts();
        assert_eq!(m.access_counts()[0].0, 0);
    }
}
