//! The hashed token memories.
//!
//! Reproduces the PSM-E memory organization (§6.1): "One hash table is used
//! for all the left memory nodes in the network and the other is used for
//! all the right memory nodes. The hash function … takes into account
//! (1) the variable bindings tested for equality at the two-input node, and
//! (2) the unique node-ID of the destination two-input node. … A single
//! lock controls the access to a line, i.e., a pair of corresponding buckets
//! from left and right hash tables."
//!
//! Holding the line lock while inserting one's own token *and* scanning the
//! opposite bucket makes simultaneous left/right arrivals at a node
//! linearizable — no joined pair is missed or double-counted.
//!
//! Entries carry signed *weights* (counting Rete): a delete that overtakes
//! its add simply leaves a −1 entry that the add later annihilates. Between
//! quiescent points every weight is 0 or 1; the transient negatives only
//! exist while a cycle's tasks are in flight. Left entries additionally
//! carry `m`, the number (summed weight) of matching right tokens — the
//! not-node counter of §2.2.

use crate::node::NodeId;
use crate::sync::{SpinGuard, SpinLock};
use crate::token::Token;
use crate::util::fxhash;
use psme_ops::{Value, WmeId};

/// One element of a memory key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KeyElem {
    /// A field value (from an equality variable test).
    V(Value),
    /// A wme id (from an identity constraint).
    W(WmeId),
}

/// A computed memory key: the equality bindings of a token at a node.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Key(pub Box<[KeyElem]>);

/// An entry in a left memory.
#[derive(Clone, Debug)]
pub struct LeftEntry {
    /// Destination node.
    pub node: NodeId,
    /// Equality-binding key.
    pub key: Key,
    /// The stored token.
    pub token: Token,
    /// Signed multiplicity (1 at quiescence).
    pub weight: i32,
    /// Not-node counter: summed weight of matching right tokens.
    pub m: i32,
}

/// An entry in a right memory.
#[derive(Clone, Debug)]
pub struct RightEntry {
    /// Destination node.
    pub node: NodeId,
    /// Equality-binding key.
    pub key: Key,
    /// The stored token (a unit token for alpha-sourced inputs).
    pub token: Token,
    /// Signed multiplicity (1 at quiescence).
    pub weight: i32,
}

/// The pair of corresponding left/right buckets guarded by one lock.
#[derive(Default, Debug)]
pub struct LineData {
    /// Left-memory entries hashed to this line.
    pub left: Vec<LeftEntry>,
    /// Right-memory entries hashed to this line.
    pub right: Vec<RightEntry>,
    /// Left-token accesses this cycle (Figure 6-2 instrumentation).
    pub left_accesses: u64,
    /// Right-token accesses this cycle.
    pub right_accesses: u64,
}

/// The global memory table: `2^k` lines, each a [`SpinLock`]`<`[`LineData`]`>`.
pub struct MemoryTable {
    lines: Box<[SpinLock<LineData>]>,
    mask: u64,
}

impl MemoryTable {
    /// Create with `lines` lines (rounded up to a power of two, min 1).
    pub fn new(lines: usize) -> MemoryTable {
        let n = lines.next_power_of_two().max(1);
        MemoryTable {
            lines: (0..n).map(|_| SpinLock::new(LineData::default())).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// The line index for a node/key pair.
    #[inline]
    pub fn line_of(&self, node: NodeId, key: &Key) -> u32 {
        (fxhash(&(node, key)) & self.mask) as u32
    }

    /// Lock a line; returns the guard and the spin count.
    #[inline]
    pub fn lock(&self, line: u32) -> (SpinGuard<'_, LineData>, u64) {
        self.lines[line as usize].lock()
    }

    /// Reset the per-line access counters (called at cycle boundaries).
    pub fn reset_access_counts(&self) {
        for l in self.lines.iter() {
            let (mut g, _) = l.lock();
            g.left_accesses = 0;
            g.right_accesses = 0;
        }
    }

    /// Harvest `(left_accesses, right_accesses)` per line.
    pub fn access_counts(&self) -> Vec<(u64, u64)> {
        self.lines
            .iter()
            .map(|l| {
                let (g, _) = l.lock();
                (g.left_accesses, g.right_accesses)
            })
            .collect()
    }

    /// Enumerate the stored left tokens of `node` with positive weight
    /// (used by the state-update seeder and by tests). Locks lines one at a
    /// time; callers run at quiescence.
    pub fn left_tokens_of(&self, node: NodeId) -> Vec<Token> {
        let mut out = Vec::new();
        for l in self.lines.iter() {
            let (g, _) = l.lock();
            for e in g.left.iter().filter(|e| e.node == node && e.weight > 0) {
                for _ in 0..e.weight {
                    out.push(e.token.clone());
                }
            }
        }
        out
    }

    /// Enumerate the stored right tokens of `node` with positive weight.
    pub fn right_tokens_of(&self, node: NodeId) -> Vec<Token> {
        let mut out = Vec::new();
        for l in self.lines.iter() {
            let (g, _) = l.lock();
            for e in g.right.iter().filter(|e| e.node == node && e.weight > 0) {
                for _ in 0..e.weight {
                    out.push(e.token.clone());
                }
            }
        }
        out
    }

    /// Assert the quiescence invariant: every weight is 0 or 1 and every
    /// not-counter is non-negative. Panics otherwise (used by tests and
    /// debug assertions at cycle boundaries).
    pub fn assert_quiescent(&self) {
        for (i, l) in self.lines.iter().enumerate() {
            let (g, _) = l.lock();
            for e in &g.left {
                assert!(
                    e.weight == 0 || e.weight == 1,
                    "line {i}: left entry weight {} for node {} {:?}",
                    e.weight,
                    e.node,
                    e.token
                );
                assert!(e.m >= 0, "line {i}: negative not-counter {} node {}", e.m, e.node);
            }
            for e in &g.right {
                assert!(
                    e.weight == 0 || e.weight == 1,
                    "line {i}: right entry weight {} for node {} {:?}",
                    e.weight,
                    e.node,
                    e.token
                );
            }
        }
    }

    /// Drop zero-weight entries (housekeeping between cycles).
    pub fn compact(&self) {
        for l in self.lines.iter() {
            let (mut g, _) = l.lock();
            g.left.retain(|e| e.weight != 0);
            g.right.retain(|e| e.weight != 0);
        }
    }
}

impl std::fmt::Debug for MemoryTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemoryTable({} lines)", self.lines.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> Key {
        Key(vals.iter().map(|&v| KeyElem::V(Value::Int(v))).collect())
    }

    #[test]
    fn sizes_round_to_power_of_two() {
        assert_eq!(MemoryTable::new(1000).num_lines(), 1024);
        assert_eq!(MemoryTable::new(1).num_lines(), 1);
        assert_eq!(MemoryTable::new(0).num_lines(), 1);
    }

    #[test]
    fn line_of_is_stable_and_keyed() {
        let m = MemoryTable::new(64);
        let k1 = key(&[1, 2]);
        let k2 = key(&[1, 3]);
        assert_eq!(m.line_of(5, &k1), m.line_of(5, &k1));
        // different node or key generally maps elsewhere (not guaranteed for
        // any single pair, but these specific ones differ)
        let same = (m.line_of(5, &k1) == m.line_of(6, &k1)) && (m.line_of(5, &k1) == m.line_of(5, &k2));
        assert!(!same);
    }

    #[test]
    fn token_enumeration_respects_node_and_weight() {
        let m = MemoryTable::new(4);
        let t1 = Token::unit(WmeId(1));
        let t2 = Token::unit(WmeId(2));
        let k = key(&[]);
        {
            let line = m.line_of(7, &k);
            let (mut g, _) = m.lock(line);
            g.left.push(LeftEntry { node: 7, key: k.clone(), token: t1.clone(), weight: 1, m: 0 });
            g.left.push(LeftEntry { node: 7, key: k.clone(), token: t2.clone(), weight: 0, m: 0 });
            g.left.push(LeftEntry { node: 8, key: k.clone(), token: t2.clone(), weight: 1, m: 0 });
        }
        assert_eq!(m.left_tokens_of(7), vec![t1]);
        assert_eq!(m.left_tokens_of(8), vec![t2]);
        assert!(m.right_tokens_of(7).is_empty());
    }

    #[test]
    fn compact_drops_zero_weight() {
        let m = MemoryTable::new(1);
        {
            let (mut g, _) = m.lock(0);
            g.right.push(RightEntry { node: 1, key: key(&[]), token: Token::empty(), weight: 0 });
            g.right.push(RightEntry { node: 1, key: key(&[]), token: Token::empty(), weight: 1 });
        }
        m.compact();
        let (g, _) = m.lock(0);
        assert_eq!(g.right.len(), 1);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn assert_quiescent_catches_bad_weights() {
        let m = MemoryTable::new(1);
        {
            let (mut g, _) = m.lock(0);
            g.left.push(LeftEntry { node: 1, key: key(&[]), token: Token::empty(), weight: -1, m: 0 });
        }
        m.assert_quiescent();
    }

    #[test]
    fn access_counters_reset() {
        let m = MemoryTable::new(2);
        {
            let (mut g, _) = m.lock(0);
            g.left_accesses = 5;
        }
        assert_eq!(m.access_counts()[0].0, 5);
        m.reset_access_counts();
        assert_eq!(m.access_counts()[0].0, 0);
    }
}
