//! Automatic planning of constrained bilinear networks (§6.2, Figure 6-8).
//!
//! "The matching in all of the CEs in the production is constrained by the
//! matches for the first few CEs." Given a constraint-prefix length `k0`,
//! the planner groups the remaining CEs into connected components of the
//! variable-dependency graph (ignoring variables already bound inside the
//! prefix): each component can then be matched as an independent sub-chain
//! rooted at the prefix, and the components are joined pairwise by the
//! spine. The grouping is always semantics-preserving by construction.

use psme_ops::{BindSite, CondElem, Production, VarId};

/// Plan a bilinear grouping with the first `k0` CEs as the constraint
/// group. Returns `None` when the production has no CEs beyond the prefix
/// (nothing to parallelize) or `k0` is out of range.
pub fn plan_bilinear(prod: &Production, k0: usize) -> Option<Vec<Vec<usize>>> {
    let n = prod.ces.len();
    if k0 == 0 || k0 >= n {
        return None;
    }
    // ce index of each positive CE (bind sites record pos_idx).
    let mut ce_of_pos = Vec::new();
    for (i, ce) in prod.ces.iter().enumerate() {
        if ce.is_pos() {
            ce_of_pos.push(i);
        }
    }
    // Which variables are bound inside the prefix?
    let bound_in_prefix = |v: VarId| -> bool {
        match prod.bind_sites[v.0 as usize] {
            BindSite::Pos { pos_idx, .. } => ce_of_pos[pos_idx as usize] < k0,
            // Negation-locals are confined to one CE; RHS vars don't appear
            // in the LHS. Either way they impose no cross-CE dependency.
            _ => true,
        }
    };
    // Free variables per remaining CE.
    let rest: Vec<usize> = (k0..n).collect();
    let free_vars = |ce: &CondElem| -> Vec<VarId> {
        let mut vs = Vec::new();
        for c in ce.conds() {
            for (_, _, v) in c.var_tests() {
                if !bound_in_prefix(v) && !vs.contains(&v) {
                    vs.push(v);
                }
            }
        }
        vs
    };
    // Union-find over the remaining CEs, merging those that share a free
    // variable.
    let mut parent: Vec<usize> = (0..rest.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let mut owner_of_var: std::collections::HashMap<VarId, usize> = std::collections::HashMap::new();
    for (ri, &ce_idx) in rest.iter().enumerate() {
        for v in free_vars(&prod.ces[ce_idx]) {
            match owner_of_var.get(&v) {
                Some(&prev) => {
                    let a = find(&mut parent, prev);
                    let b = find(&mut parent, ri);
                    parent[a] = b;
                }
                None => {
                    owner_of_var.insert(v, ri);
                }
            }
        }
    }
    // Components in first-appearance order.
    let mut groups: Vec<Vec<usize>> = vec![(0..k0).collect()];
    let mut comp_index: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (ri, &ce_idx) in rest.iter().enumerate() {
        let root = find(&mut parent, ri);
        let gi = *comp_index.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gi].push(ce_idx);
    }
    Some(groups)
}

/// Longest group-internal chain of the plan (the reduced chain length the
/// paper quotes: "it reduces the length of the chain to 15 CEs").
pub fn plan_chain_length(groups: &[Vec<usize>]) -> usize {
    let longest_group = groups.iter().map(|g| g.len()).max().unwrap_or(0);
    // The spine adds one join per extra group.
    longest_group + groups.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_ops::{parse_production, ClassRegistry};

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("goal", &["id", "ps", "state"]);
        r.declare_str("state", &["id", "object", "status"]);
        r.declare_str("object", &["id", "name", "kind"]);
        r
    }

    #[test]
    fn independent_clusters_split() {
        let mut r = reg();
        // Prefix binds <s>; two independent clusters hang off it.
        let p = parse_production(
            "(p mon (goal ^id g1 ^state <s>)
                    (state ^id <s> ^object <o1>) (object ^id <o1> ^kind door)
                    (state ^id <s> ^object <o2>) (object ^id <o2> ^kind robot)
              --> (halt))",
            &mut r,
        )
        .unwrap();
        let groups = plan_bilinear(&p, 1).unwrap();
        assert_eq!(groups.len(), 3, "{groups:?}");
        assert_eq!(groups[0], vec![0]);
        assert_eq!(groups[1], vec![1, 2]);
        assert_eq!(groups[2], vec![3, 4]);
        // Chain shrinks from 5 to 2 (longest group) + 2 (spine).
        assert_eq!(plan_chain_length(&groups), 4);
    }

    #[test]
    fn chained_vars_stay_together() {
        let mut r = reg();
        let p = parse_production(
            "(p chain (goal ^state <s>)
                      (state ^id <s> ^object <a>) (object ^id <a> ^name <b>)
                      (object ^id <b> ^name <c>) (object ^id <c>)
              --> (halt))",
            &mut r,
        )
        .unwrap();
        let groups = plan_bilinear(&p, 1).unwrap();
        // Everything depends transitively on <a>: one group.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1].len(), 4);
    }

    #[test]
    fn degenerate_prefixes_rejected() {
        let mut r = reg();
        let p = parse_production("(p one (goal ^id g1) --> (halt))", &mut r).unwrap();
        assert!(plan_bilinear(&p, 0).is_none());
        assert!(plan_bilinear(&p, 1).is_none());
        assert!(plan_bilinear(&p, 9).is_none());
    }

    #[test]
    fn negations_follow_their_binders() {
        let mut r = reg();
        let p = parse_production(
            "(p neg (goal ^state <s>)
                    (state ^id <s> ^object <o>)
                   -(object ^id <o> ^kind broken)
                    (state ^id <s> ^status ok)
              --> (halt))",
            &mut r,
        )
        .unwrap();
        let groups = plan_bilinear(&p, 1).unwrap();
        // -(object ^id <o>) shares <o> with CE1 → same group; CE3 only uses
        // prefix vars → its own group.
        assert_eq!(groups[1], vec![1, 2]);
        assert_eq!(groups[2], vec![3]);
    }
}
