//! Small utilities: a fast non-cryptographic hasher for memory keys.
//!
//! The hashed token memories (§6.1 of the paper) hash on the variable
//! bindings tested for equality plus the destination node id. Keys are tiny
//! (a handful of words), so we use an Fx-style multiply-xor hash rather than
//! SipHash; HashDoS is not a concern for a match engine running trusted
//! productions.

use std::hash::Hasher;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style hasher (the algorithm used inside rustc).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Hash one value with [`FxHasher`].
pub fn fxhash<T: std::hash::Hash>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// `BuildHasher` for `HashMap`s keyed on small match-engine types.
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fxhash(&(1u32, 2u64)), fxhash(&(1u32, 2u64)));
        assert_ne!(fxhash(&1u64), fxhash(&2u64));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m[&21], 42);
    }

    #[test]
    fn spread_is_reasonable() {
        // 1024 sequential keys should not collapse into a few buckets of a
        // 128-line table.
        let mut buckets = [0u32; 128];
        for i in 0..1024u64 {
            buckets[(fxhash(&i) % 128) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 40, "worst bucket got {max} of 1024");
    }
}
