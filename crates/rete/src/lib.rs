//! # psme-rete — the Rete match network with run-time production addition
//!
//! The match substrate of the Soar/PSM-E reproduction (Tambe et al., PPoPP
//! 1988): a Rete network (§2.2) with
//!
//! * a shared constant-test **alpha network** ([`alpha`]),
//! * a beta DAG of **join / not / P nodes** whose token memories live in two
//!   global hash tables keyed on the equality bindings and the destination
//!   node id, one lock per line (§6.1) — [`node`], [`memory`],
//! * Soar **conjunctive negations** (not-nodes with a beta-side subnetwork)
//!   and the **constrained bilinear networks** of Figure 6-8 ([`build`]),
//! * **run-time addition of productions** (§5.1) with the node-ID-filtered
//!   **state update** of §5.2 ([`build`], [`update`]),
//! * a deterministic **serial engine** ([`serial`]) that doubles as trace
//!   producer for the Multimax simulator, and a brute-force **oracle**
//!   matcher ([`naive`]) for differential testing,
//! * the **code-size / compile-time models** behind Tables 5-1 and 5-2
//!   ([`codesize`]).
//!
//! Activations carry signed deltas and memories store weights (a counting
//! Rete), which makes the same node semantics correct under the parallel
//! engine's arbitrary task interleavings (see `psme-core`).
//!
//! ```
//! use psme_ops::{parse_program, parse_wme, ClassRegistry};
//! use psme_rete::{NetworkOrg, ReteNetwork, SerialEngine};
//! use std::sync::Arc;
//!
//! let mut classes = ClassRegistry::new();
//! let prods = parse_program(
//!     "(literalize block name color on) (literalize hand state)
//!      (p graspable
//!         (block ^name <b> ^color blue) -(block ^on <b>) (hand ^state free)
//!         --> (modify 1 ^color held))",
//!     &mut classes,
//! ).unwrap();
//! let mut net = ReteNetwork::new();
//! for p in prods {
//!     net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
//! }
//! let mut engine = SerialEngine::new(net);
//! let out = engine.apply_changes(
//!     vec![
//!         parse_wme("(block ^name b1 ^color blue)", &classes).unwrap(),
//!         parse_wme("(hand ^state free)", &classes).unwrap(),
//!     ],
//!     vec![],
//! );
//! assert_eq!(out.cs.added.len(), 1);
//! ```

pub mod alpha;
pub mod bilinear;
pub mod build;
pub mod codesize;
pub mod memory;
pub mod naive;
pub mod network;
pub mod node;
pub mod ops5;
pub mod process;
pub mod reorg;
pub mod serial;
pub mod session;
pub mod snapshot;
pub mod state;
pub mod sync;
pub mod testgen;
pub mod token;
pub mod trace;
pub mod update;
pub mod util;
pub mod view;

pub use alpha::{AlphaMem, AlphaMemId, AlphaNet, AlphaStats};
pub use bilinear::{plan_bilinear, plan_chain_length};
pub use build::{AddResult, BuildError};
pub use codesize::{code_size, compile_time_us, CodeSizeModel, CodegenStyle, ProdCodeSize};
pub use memory::{key_hash, Key, KeyElem, LeftEntry, LineData, MemoryTable, RightEntry, KEY_INLINE};
pub use network::{NetStats, NetworkOrg, ProdInfo, ReteNetwork};
pub use node::{BetaNode, JoinTest, KeyPart, NodeId, NodeKind, RightSrc, Side, ROOT};
pub use ops5::{Ops5Runtime, Ops5Stop};
pub use process::{
    make_key, plan_beta, process_beta, process_beta_batch, process_beta_scratch,
    process_wme_change, ActStats, Activation, BetaScratch, CsChange, PlannedBeta,
};
pub use reorg::{ChainDetector, ReorgConfig, ReorgDecision};
pub use serial::{
    fold_cs, instantiation_of, instantiations_from_memories, AddOutcome, CsDelta, CsFold,
    CycleOutcome, ReorgOutcome, SerialEngine,
};
pub use session::{SessionNet, Topology};
pub use snapshot::{
    fnv1a64, open_frame, seal_frame, session_digest, ByteReader, ByteWriter, Journal,
    JournaledSession, SnapOp, SnapshotError, JOURNAL_MAGIC, JOURNAL_VERSION,
};
pub use state::MatchState;
pub use sync::{SpinGuard, SpinLock};
pub use token::{Token, WmeStore};
pub use trace::{CycleTrace, Phase, RunTrace, TaskKind, TaskRecord};
pub use update::{seed_update, update_seeds};
pub use view::{ReorgBuild, ReteBuild, ReteView};
