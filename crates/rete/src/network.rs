//! The Rete network: alpha net + beta DAG + production table.

use crate::alpha::AlphaNet;
use crate::node::{BetaNode, NodeId, NodeKind, NodeSignature, RightSrc, Side, ROOT};
use crate::util::FxHashMap;
use psme_ops::Production;
use std::sync::Arc;

/// Network organization for a production (§6.2 of the paper).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum NetworkOrg {
    /// Classic left-to-right linear join chain.
    #[default]
    Linear,
    /// Constrained bilinear network (Figure 6-8): CEs are partitioned into
    /// groups (given as lists of CE indices into `Production::ces`); group 0
    /// is the constraint prefix, later groups match as independent
    /// sub-chains rooted at group 0's result and are joined pairwise by a
    /// spine of beta-beta joins.
    Bilinear(Vec<Vec<usize>>),
}

/// Per-production bookkeeping.
#[derive(Clone, Debug)]
pub struct ProdInfo {
    /// The source production.
    pub production: Arc<Production>,
    /// Terminal node.
    pub p_node: NodeId,
    /// For each positive CE (in order), the slot of its wme in the P node's
    /// input tokens.
    pub pos_slots: Vec<u16>,
    /// Smallest node id created for this production (all its new nodes form
    /// the contiguous range `first_new..` at the time of addition — the
    /// node-ID property the run-time state update of §5.2 uses).
    pub first_new: NodeId,
    /// Number of two-input nodes newly created.
    pub new_two_input: u32,
    /// Number of two-input nodes shared with earlier productions.
    pub shared_two_input: u32,
    /// Network organization used.
    pub org: NetworkOrg,
}

/// The complete match network.
pub struct ReteNetwork {
    /// Constant-test network.
    pub alpha: AlphaNet,
    /// Beta nodes, indexed by [`NodeId`] (node 0 is the root).
    pub betas: Vec<BetaNode>,
    /// Productions, indexed by the `prod` field of [`NodeKind::Prod`].
    pub prods: Vec<ProdInfo>,
    /// Whether two-input node sharing is enabled (Table 5-2 compares the
    /// shared and unshared compile paths).
    pub sharing: bool,
    pub(crate) sig_index: FxHashMap<NodeSignature, NodeId>,
    /// Inert pool: node ids retired by adaptive reorganizations, sorted.
    /// Retired nodes stay allocated (ids are stable, §5.2 depends on the
    /// monotone-id invariant) but are physically unplugged — no surviving
    /// node or alpha memory points at them, their signatures are out of the
    /// sharing index, and their token memories are purged.
    pub(crate) retired_pool: Vec<NodeId>,
}

impl ReteNetwork {
    /// Empty network with node sharing enabled.
    pub fn new() -> ReteNetwork {
        ReteNetwork::with_sharing(true)
    }

    /// Empty network, choosing whether two-input nodes are shared.
    pub fn with_sharing(sharing: bool) -> ReteNetwork {
        let root = BetaNode {
            id: ROOT,
            kind: NodeKind::Root,
            parent: ROOT,
            right: None,
            tests: vec![],
            left_key: vec![],
            right_key: vec![],
            coverage: vec![],
            right_coverage: vec![],
            merge: vec![],
            out_edges: vec![],
            prod_names: vec![],
        };
        ReteNetwork {
            alpha: AlphaNet::new(),
            betas: vec![root],
            prods: Vec::new(),
            sharing,
            sig_index: FxHashMap::default(),
            retired_pool: Vec::new(),
        }
    }

    /// Was `id` retired to the inert pool by a reorganization?
    #[inline]
    pub fn is_retired(&self, id: NodeId) -> bool {
        self.retired_pool.binary_search(&id).is_ok()
    }

    /// Nodes currently in the inert retired pool.
    pub fn retired_nodes(&self) -> usize {
        self.retired_pool.len()
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &BetaNode {
        &self.betas[id as usize]
    }

    /// Number of beta nodes (including the root).
    pub fn num_nodes(&self) -> usize {
        self.betas.len()
    }

    /// Append a node, wiring its parent / right-source edges. Returns its id.
    pub(crate) fn push_node(&mut self, mut node: BetaNode) -> NodeId {
        let id = self.betas.len() as NodeId;
        node.id = id;
        let parent = node.parent;
        let right = node.right;
        let sig = node.signature();
        self.betas.push(node);
        if id != ROOT {
            self.betas[parent as usize].out_edges.push((id, Side::Left));
        }
        match right {
            Some(RightSrc::Alpha(a)) => self.alpha.add_successor(a, id),
            Some(RightSrc::Beta(b)) => self.betas[b as usize].out_edges.push((id, Side::Right)),
            None => {}
        }
        if self.sharing && !matches!(self.betas[id as usize].kind, NodeKind::Prod { .. }) {
            self.sig_index.insert(sig, id);
        }
        id
    }

    /// Look up a shareable node with this signature. Retired nodes are
    /// removed from the index at reorg commit; the filter here is
    /// belt-and-braces against ever sharing into the inert pool.
    pub(crate) fn find_shared(&self, sig: &NodeSignature) -> Option<NodeId> {
        if self.sharing {
            self.sig_index.get(sig).copied().filter(|&id| !self.is_retired(id))
        } else {
            None
        }
    }

    /// Find a production's index by name.
    pub fn prod_by_name(&self, name: psme_ops::Symbol) -> Option<u32> {
        self.prods
            .iter()
            .position(|p| p.production.name == name)
            .map(|i| i as u32)
    }

    /// Iterate over the two-input nodes.
    pub fn two_input_nodes(&self) -> impl Iterator<Item = &BetaNode> {
        self.betas.iter().filter(|n| n.is_two_input())
    }

    /// Maximum join-chain depth from the root to any P node — the "long
    /// chain" length the paper's §6.2 analyzes.
    pub fn max_chain_depth(&self) -> usize {
        let mut depth = vec![0usize; self.betas.len()];
        let mut best = 0;
        // Nodes are topologically ordered by construction (parents and right
        // sources precede children).
        for i in 1..self.betas.len() {
            if self.is_retired(i as NodeId) {
                continue;
            }
            let n = &self.betas[i];
            let mut d = depth[n.parent as usize];
            if let Some(RightSrc::Beta(b)) = n.right {
                d = d.max(depth[b as usize]);
            }
            if n.is_two_input() {
                d += 1;
            }
            depth[i] = d;
            best = best.max(d);
        }
        best
    }

    /// Network statistics (for DESIGN/EXPERIMENTS reporting and tests).
    pub fn stats(&self) -> NetStats {
        let mut s = NetStats {
            alpha_mems: self.alpha.len(),
            const_tests: self.alpha.distinct_const_tests(),
            ..NetStats::default()
        };
        for n in &self.betas {
            if self.is_retired(n.id) {
                continue;
            }
            match n.kind {
                NodeKind::Root => {}
                NodeKind::Join => {
                    s.join_nodes += 1;
                    if n.is_shared() {
                        s.shared_two_input += 1;
                    }
                }
                NodeKind::Neg => {
                    s.neg_nodes += 1;
                    if matches!(n.right, Some(RightSrc::Beta(_))) {
                        s.ncc_nodes += 1;
                    }
                    if n.is_shared() {
                        s.shared_two_input += 1;
                    }
                }
                NodeKind::Prod { .. } => s.prod_nodes += 1,
            }
        }
        s.max_chain_depth = self.max_chain_depth();
        s
    }

    /// Graphviz dot rendering of the beta network (debugging aid).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph rete {\n  rankdir=TB;\n");
        for n in &self.betas {
            let label = match n.kind {
                NodeKind::Root => "root".to_string(),
                NodeKind::Join => format!("join {}", n.id),
                NodeKind::Neg => match n.right {
                    Some(RightSrc::Beta(_)) => format!("ncc {}", n.id),
                    _ => format!("not {}", n.id),
                },
                NodeKind::Prod { prod } => {
                    format!("P {}", self.prods[prod as usize].production.name)
                }
            };
            writeln!(s, "  n{} [label=\"{}\"];", n.id, label).unwrap();
            for (c, side) in &n.out_edges {
                let style = if *side == Side::Right { " [style=dashed]" } else { "" };
                writeln!(s, "  n{} -> n{}{};", n.id, c, style).unwrap();
            }
        }
        for m in self.alpha.mems() {
            writeln!(s, "  a{} [shape=box,label=\"α {} {}\"];", m.id.0, m.class, m.id.0).unwrap();
            for (c, _) in &m.successors {
                writeln!(s, "  a{} -> n{} [style=dotted];", m.id.0, c).unwrap();
            }
        }
        s.push_str("}\n");
        s
    }
}

impl Default for ReteNetwork {
    fn default() -> Self {
        ReteNetwork::new()
    }
}

impl std::fmt::Debug for ReteNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReteNetwork({} nodes, {} alpha mems, {} prods, sharing={})",
            self.betas.len(),
            self.alpha.len(),
            self.prods.len(),
            self.sharing
        )
    }
}

/// Summary statistics of a network.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NetStats {
    /// Number of alpha memories.
    pub alpha_mems: usize,
    /// Distinct shared constant-test nodes.
    pub const_tests: usize,
    /// And-nodes.
    pub join_nodes: usize,
    /// Not-nodes (including NCC negations).
    pub neg_nodes: usize,
    /// Of those, conjunctive negations (beta-right).
    pub ncc_nodes: usize,
    /// P nodes.
    pub prod_nodes: usize,
    /// Two-input nodes used by more than one production.
    pub shared_two_input: usize,
    /// Longest dependent join chain (§6.2).
    pub max_chain_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_ops::{parse_production, ClassRegistry};
    use std::sync::Arc;

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("a", &["x", "y"]);
        r.declare_str("b", &["x", "y"]);
        r
    }

    #[test]
    fn empty_network_has_only_root() {
        let net = ReteNetwork::new();
        assert_eq!(net.num_nodes(), 1);
        assert_eq!(net.node(ROOT).kind, NodeKind::Root);
        assert_eq!(net.max_chain_depth(), 0);
        let s = net.stats();
        assert_eq!(s.join_nodes + s.neg_nodes + s.prod_nodes, 0);
    }

    #[test]
    fn stats_count_node_kinds() {
        let mut r = reg();
        let mut net = ReteNetwork::new();
        let p = parse_production(
            "(p k (a ^x <v>) -(b ^x <v>) -{ (a ^y <v>) (b ^y <v>) } --> (halt))",
            &mut r,
        )
        .unwrap();
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        let s = net.stats();
        assert_eq!(s.prod_nodes, 1);
        assert_eq!(s.neg_nodes, 2, "simple negation + NCC negation");
        assert_eq!(s.ncc_nodes, 1, "one beta-right negation");
        assert!(s.join_nodes >= 3, "first CE + 2 subnet joins: {}", s.join_nodes);
        assert!(s.alpha_mems >= 3);
    }

    #[test]
    fn prod_by_name_finds_index() {
        let mut r = reg();
        let mut net = ReteNetwork::new();
        for src in ["(p one (a ^x 1) --> (halt))", "(p two (a ^x 2) --> (halt))"] {
            let p = parse_production(src, &mut r).unwrap();
            net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        }
        assert_eq!(net.prod_by_name(psme_ops::intern("two")), Some(1));
        assert_eq!(net.prod_by_name(psme_ops::intern("absent")), None);
    }

    #[test]
    fn dot_export_mentions_every_production() {
        let mut r = reg();
        let mut net = ReteNetwork::new();
        let p = parse_production("(p render-me (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        let dot = net.to_dot();
        assert!(dot.contains("digraph rete"));
        assert!(dot.contains("render-me"));
        assert!(dot.contains("style=dotted"), "alpha edges rendered");
    }

    #[test]
    fn chain_depth_counts_two_input_nodes() {
        let mut r = reg();
        let mut net = ReteNetwork::new();
        let p = parse_production(
            "(p chain (a ^x <v1>) (a ^x <v1> ^y <v2>) (a ^x <v2>) --> (halt))",
            &mut r,
        )
        .unwrap();
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        assert_eq!(net.max_chain_depth(), 3);
    }
}
