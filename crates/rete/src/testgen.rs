//! Synthetic workload generation: random production systems, long-chain
//! productions, and wme streams.
//!
//! Used by the differential test suites (serial ⇔ parallel ⇔ naive oracle),
//! by the ablation benchmarks, and by the Figure 6-7/6-8 long-chain
//! experiments. Everything is seeded and deterministic.

use psme_ops::{
    intern, Action, ClassRegistry, Cond, CondElem, FieldTest, Pred, Production, RhsTerm, Value,
    VarTable, Wme,
};

/// Deterministic xorshift generator (no external dependency so that the
/// library crate stays lean; test crates use `rand`/`proptest` on top).
#[derive(Clone, Debug)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeded generator (seed 0 is remapped).
    pub fn new(seed: u64) -> XorShift {
        XorShift { state: seed.max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1 }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli with probability `p percent`.
    pub fn chance(&mut self, percent: u32) -> bool {
        (self.next_u64() % 100) < percent as u64
    }
}

/// Shape parameters for [`random_system`].
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of wme classes.
    pub classes: usize,
    /// Attributes per class.
    pub arity: usize,
    /// Distinct symbolic values per field domain.
    pub domain: usize,
    /// Number of productions.
    pub productions: usize,
    /// Maximum positive CEs per production.
    pub max_pos: usize,
    /// Percent chance of appending a negated CE.
    pub neg_pct: u32,
    /// Percent chance of appending an NCC (2 conditions).
    pub ncc_pct: u32,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            classes: 3,
            arity: 3,
            domain: 4,
            productions: 6,
            max_pos: 3,
            neg_pct: 40,
            ncc_pct: 25,
        }
    }
}

/// A generated production system plus a wme sampler.
#[derive(Debug)]
pub struct GeneratedSystem {
    /// Class declarations.
    pub classes: ClassRegistry,
    /// The productions.
    pub productions: Vec<Production>,
    class_names: Vec<psme_ops::Symbol>,
    arity: usize,
    domain: usize,
}

impl GeneratedSystem {
    /// Sample a random wme from the same small value domains the
    /// productions test, so matches actually occur.
    pub fn random_wme(&self, rng: &mut XorShift) -> Wme {
        let ci = rng.below(self.class_names.len());
        let decl = self.classes.get(self.class_names[ci]).unwrap().clone();
        let mut w = Wme::empty(&decl);
        for f in 0..self.arity {
            w.fields[f] = random_value(rng, self.domain);
        }
        w
    }
}

fn random_value(rng: &mut XorShift, domain: usize) -> Value {
    match rng.below(6) {
        0 => Value::Nil,
        1 | 2 => Value::Int(rng.below(domain) as i64),
        _ => Value::Sym(intern(&format!("v{}", rng.below(domain)))),
    }
}

/// Generate a random but *valid* production system.
pub fn random_system(seed: u64, cfg: GenConfig) -> GeneratedSystem {
    let mut rng = XorShift::new(seed);
    let mut classes = ClassRegistry::new();
    let mut class_names = Vec::new();
    for c in 0..cfg.classes {
        let name = format!("c{c}");
        let attrs: Vec<String> = (0..cfg.arity).map(|a| format!("a{a}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        classes.declare_str(&name, &attr_refs);
        class_names.push(intern(&name));
    }
    let mut productions = Vec::new();
    let mut attempt = 0u64;
    while productions.len() < cfg.productions {
        attempt += 1;
        let name = intern(&format!("gen-p{}-{}", productions.len(), seed));
        if let Some(p) = try_production(&mut rng, &cfg, &class_names, name) {
            productions.push(p);
        }
        assert!(attempt < 10_000, "generator failed to produce valid productions");
    }
    GeneratedSystem { classes, productions, class_names, arity: cfg.arity, domain: cfg.domain }
}

fn random_cond(
    rng: &mut XorShift,
    cfg: &GenConfig,
    class_names: &[psme_ops::Symbol],
    vars: &mut VarTable,
    bound: &mut Vec<psme_ops::VarId>,
    allow_fresh: bool,
) -> Cond {
    let class = class_names[rng.below(class_names.len())];
    let mut tests = Vec::new();
    let ntests = 1 + rng.below(2);
    for _ in 0..ntests {
        let field = rng.below(cfg.arity) as u16;
        if rng.chance(45) || bound.is_empty() {
            // constant test
            let pred = if rng.chance(80) {
                Pred::Eq
            } else {
                [Pred::Ne, Pred::Lt, Pred::Gt][rng.below(3)]
            };
            tests.push(FieldTest::Const { field, pred, value: random_value(rng, cfg.domain) });
        } else if rng.chance(60) || !allow_fresh {
            // reference an existing variable
            let var = bound[rng.below(bound.len())];
            let pred = if rng.chance(70) { Pred::Eq } else { [Pred::Ne, Pred::Le][rng.below(2)] };
            tests.push(FieldTest::Var { field, pred, var });
        } else {
            // bind a fresh variable
            let var = vars.var(intern(&format!("x{}", vars.len())));
            tests.push(FieldTest::Var { field, pred: Pred::Eq, var });
            bound.push(var);
        }
    }
    Cond { class, tests }
}

fn try_production(
    rng: &mut XorShift,
    cfg: &GenConfig,
    class_names: &[psme_ops::Symbol],
    name: psme_ops::Symbol,
) -> Option<Production> {
    let mut vars = VarTable::new();
    let mut bound: Vec<psme_ops::VarId> = Vec::new();
    let mut ces = Vec::new();
    let npos = 1 + rng.below(cfg.max_pos);
    for _ in 0..npos {
        ces.push(CondElem::Pos(random_cond(rng, cfg, class_names, &mut vars, &mut bound, true)));
    }
    if rng.chance(cfg.neg_pct) {
        // Negations may bind locals; keep the outer bound list untouched.
        let mut local_bound = bound.clone();
        let c = random_cond(rng, cfg, class_names, &mut vars, &mut local_bound, true);
        ces.push(CondElem::Neg(c));
    }
    if rng.chance(cfg.ncc_pct) {
        let mut local_bound = bound.clone();
        let c1 = random_cond(rng, cfg, class_names, &mut vars, &mut local_bound, true);
        let c2 = random_cond(rng, cfg, class_names, &mut vars, &mut local_bound, false);
        ces.push(CondElem::Ncc(vec![c1, c2]));
    }
    // Shuffle the non-first CEs a little so negations appear mid-chain too.
    if ces.len() > 2 && rng.chance(50) {
        let i = 1 + rng.below(ces.len() - 1);
        let j = 1 + rng.below(ces.len() - 1);
        ces.swap(i, j);
    }
    let actions = vec![Action::Make {
        class: class_names[0],
        fields: if bound.is_empty() {
            vec![]
        } else {
            vec![(0, RhsTerm::Var(bound[rng.below(bound.len())]))]
        },
    }];
    Production::new(name, ces, vars.into_names(), vec![], actions).ok()
}

/// Shape parameters for [`alpha_grid`] — random raw alpha-memory test sets
/// over a small class/field/value grid, for the indexed ⇔ linear
/// discrimination differential tests.
#[derive(Clone, Copy, Debug)]
pub struct AlphaGridConfig {
    /// Number of wme classes.
    pub classes: usize,
    /// Attributes per class.
    pub arity: usize,
    /// Distinct values per field domain (small, so tests collide and get
    /// shared between memories).
    pub domain: usize,
}

impl Default for AlphaGridConfig {
    fn default() -> AlphaGridConfig {
        AlphaGridConfig { classes: 3, arity: 4, domain: 4 }
    }
}

/// A class grid plus samplers for raw alpha test sets and wmes.
#[derive(Debug)]
pub struct AlphaGrid {
    /// Class declarations (for building wmes).
    pub classes: ClassRegistry,
    class_names: Vec<psme_ops::Symbol>,
    cfg: AlphaGridConfig,
}

/// Build the class grid for [`AlphaGridConfig`].
pub fn alpha_grid(cfg: AlphaGridConfig) -> AlphaGrid {
    let mut classes = ClassRegistry::new();
    let mut class_names = Vec::new();
    for c in 0..cfg.classes.max(1) {
        let name = format!("g{c}");
        let attrs: Vec<String> = (0..cfg.arity.max(1)).map(|a| format!("a{a}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        classes.declare_str(&name, &attr_refs);
        class_names.push(intern(&name));
    }
    AlphaGrid { classes, class_names, cfg }
}

impl AlphaGrid {
    /// Sample a raw alpha-memory spec `(class, const tests, intra tests)`,
    /// equality-heavy (so most memories are jump-routable) but with
    /// relational, `≠ nil` and intra-element tests mixed in, all drawn from
    /// the same small domain so residual tests are shared across memories.
    pub fn random_test_set(
        &self,
        rng: &mut XorShift,
    ) -> (psme_ops::Symbol, Vec<crate::alpha::AlphaTest>, Vec<crate::alpha::IntraTest>) {
        use crate::alpha::{AlphaTest, IntraTest, PredOrd};
        let class = self.class_names[rng.below(self.class_names.len())];
        let mut tests = Vec::new();
        let mut intra = Vec::new();
        for _ in 0..rng.below(4) {
            let field = rng.below(self.cfg.arity) as u16;
            if rng.chance(15) && self.cfg.arity >= 2 {
                let field_b = rng.below(self.cfg.arity) as u16;
                let pred = if rng.chance(70) { Pred::Eq } else { Pred::Ne };
                intra.push(IntraTest { field_a: field, pred: PredOrd(pred), field_b });
            } else {
                let pred = if rng.chance(60) {
                    Pred::Eq
                } else {
                    [Pred::Ne, Pred::Lt, Pred::Gt, Pred::Le, Pred::Ge][rng.below(5)]
                };
                tests.push(AlphaTest {
                    field,
                    pred: PredOrd(pred),
                    value: random_value(rng, self.cfg.domain),
                });
            }
        }
        (class, tests, intra)
    }

    /// Sample a wme over the grid's classes and domains.
    pub fn random_wme(&self, rng: &mut XorShift) -> Wme {
        let ci = rng.below(self.class_names.len());
        let decl = self.classes.get(self.class_names[ci]).unwrap().clone();
        let mut w = Wme::empty(&decl);
        for f in 0..self.cfg.arity {
            w.fields[f] = random_value(rng, self.cfg.domain);
        }
        w
    }
}

/// Build a long-chain production (Figure 6-7): `n` CEs where CE k+1 links
/// to CE k through a shared variable, forcing `n` dependent node
/// activations.
///
/// Registers the `link` class in `classes` if missing and returns the
/// production. Wmes matching the chain come from [`chain_wmes`].
pub fn long_chain(classes: &mut ClassRegistry, n: usize, name: &str) -> Production {
    assert!(n >= 2);
    let decl = classes.declare_str("link", &["from", "to", "kind"]);
    let _ = decl;
    let mut vars = VarTable::new();
    let mut ces = Vec::new();
    let mut prev = vars.var(intern("n0"));
    // CE 0 anchors the chain at the constant `start`.
    ces.push(CondElem::Pos(Cond {
        class: intern("link"),
        tests: vec![
            FieldTest::Const { field: 0, pred: Pred::Eq, value: Value::sym("start") },
            FieldTest::Var { field: 1, pred: Pred::Eq, var: prev },
        ],
    }));
    for k in 1..n {
        let next = vars.var(intern(&format!("n{k}")));
        ces.push(CondElem::Pos(Cond {
            class: intern("link"),
            tests: vec![
                FieldTest::Var { field: 0, pred: Pred::Eq, var: prev },
                FieldTest::Var { field: 1, pred: Pred::Eq, var: next },
            ],
        }));
        prev = next;
    }
    Production::new(
        intern(name),
        ces,
        vars.into_names(),
        vec![],
        vec![Action::Make { class: intern("link"), fields: vec![] }],
    )
    .expect("long_chain is structurally valid")
}

/// Wmes forming a single linked path `start → n0 → n1 → …` that satisfies
/// [`long_chain`] of length `n`.
pub fn chain_wmes(classes: &ClassRegistry, n: usize) -> Vec<Wme> {
    let decl = classes.get(intern("link")).expect("long_chain registered `link`").clone();
    let mut out = Vec::new();
    let mut prev = Value::sym("start");
    for k in 0..n {
        let next = Value::sym(&format!("node{k}"));
        let mut w = Wme::empty(&decl);
        w.fields[0] = prev;
        w.fields[1] = next;
        out.push(w);
        prev = next;
    }
    out
}

/// Shape parameters for [`adversarial_chain`] — the worst-case
/// cross-product workload for *linear* network organization.
#[derive(Clone, Copy, Debug)]
pub struct AdversarialConfig {
    /// Independent variable groups (item/partner pairs). Must be ≥ 2; the
    /// linear cross-product grows as `rounds^groups`, so 3 is already
    /// super-quadratic.
    pub groups: usize,
    /// Working-memory rounds; each adds one item and one partner per group.
    pub rounds: usize,
}

impl Default for AdversarialConfig {
    fn default() -> AdversarialConfig {
        AdversarialConfig { groups: 3, rounds: 16 }
    }
}

/// An [`adversarial_chain`] instance: one production plus its incremental
/// wme load, in rounds (one engine cycle each).
#[derive(Debug)]
pub struct AdversarialInstance {
    /// Class declarations (`anchor`, `item`, `partner`).
    pub classes: ClassRegistry,
    /// The chain-dominant production.
    pub production: Production,
    /// Wme batches, one per cycle. Batch 0 carries the anchor and the
    /// selected partners; every batch adds one item + one partner per group.
    pub rounds: Vec<Vec<Wme>>,
}

/// Build the adversarial cross-product chain of §7: a production whose CE
/// order under linear organization is
///
/// ```text
/// (anchor ^id <a>) (item g1) … (item gG) (partner g1) … (partner gG)
/// ```
///
/// where the item CEs join *only* on the anchor — every item join is a pure
/// cross-product over all groups added so far — and each partner CE then
/// collapses its group to the single `^sel yes` value. Intermediate token
/// counts under linear organization grow as `rounds^groups` while the final
/// conflict set stays at one instantiation, so total linear match work is
/// Θ(rounds^(groups+1)) summed over the incremental load. The bilinear
/// grouping `{item g, partner g}` (found by [`crate::bilinear::plan_bilinear`]
/// with `k0 = 1`) filters each group before the spine cross-product ever
/// forms, collapsing total work to Θ(rounds).
///
/// Deterministic: the same config always yields the same instance, and the
/// final conflict set is naive-oracle-checkable at any prefix of rounds.
pub fn adversarial_chain(cfg: AdversarialConfig) -> AdversarialInstance {
    assert!(cfg.groups >= 2, "need at least two independent groups");
    let mut classes = ClassRegistry::new();
    classes.declare_str("anchor", &["id"]);
    classes.declare_str("item", &["grp", "anchor", "val"]);
    classes.declare_str("partner", &["grp", "anchor", "val", "sel"]);
    let mut vars = VarTable::new();
    let a = vars.var(intern("a"));
    let mut ces = Vec::new();
    ces.push(CondElem::Pos(Cond {
        class: intern("anchor"),
        tests: vec![FieldTest::Var { field: 0, pred: Pred::Eq, var: a }],
    }));
    let vals: Vec<psme_ops::VarId> =
        (0..cfg.groups).map(|g| vars.var(intern(&format!("v{g}")))).collect();
    for (g, &v) in vals.iter().enumerate() {
        ces.push(CondElem::Pos(Cond {
            class: intern("item"),
            tests: vec![
                FieldTest::Const { field: 0, pred: Pred::Eq, value: Value::Int(g as i64) },
                FieldTest::Var { field: 1, pred: Pred::Eq, var: a },
                FieldTest::Var { field: 2, pred: Pred::Eq, var: v },
            ],
        }));
    }
    for (g, &v) in vals.iter().enumerate() {
        ces.push(CondElem::Pos(Cond {
            class: intern("partner"),
            tests: vec![
                FieldTest::Const { field: 0, pred: Pred::Eq, value: Value::Int(g as i64) },
                FieldTest::Var { field: 1, pred: Pred::Eq, var: a },
                FieldTest::Var { field: 2, pred: Pred::Eq, var: v },
                FieldTest::Const { field: 3, pred: Pred::Eq, value: Value::sym("yes") },
            ],
        }));
    }
    let production = Production::new(
        intern(&format!("adv-cross-{}g", cfg.groups)),
        ces,
        vars.into_names(),
        vec![],
        vec![Action::Make { class: intern("anchor"), fields: vec![] }],
    )
    .expect("adversarial chain is structurally valid");

    let item_decl = classes.get(intern("item")).unwrap().clone();
    let partner_decl = classes.get(intern("partner")).unwrap().clone();
    let anchor_decl = classes.get(intern("anchor")).unwrap().clone();
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for r in 0..cfg.rounds {
        let mut batch = Vec::new();
        if r == 0 {
            let mut w = Wme::empty(&anchor_decl);
            w.fields[0] = Value::sym("a0");
            batch.push(w);
        }
        for g in 0..cfg.groups {
            let mut item = Wme::empty(&item_decl);
            item.fields[0] = Value::Int(g as i64);
            item.fields[1] = Value::sym("a0");
            item.fields[2] = Value::Int(r as i64);
            batch.push(item);
            let mut partner = Wme::empty(&partner_decl);
            partner.fields[0] = Value::Int(g as i64);
            partner.fields[1] = Value::sym("a0");
            partner.fields[2] = Value::Int(r as i64);
            // Only round 0's partners are selected: every other partner is
            // alpha-rejected, so the final conflict set stays at one
            // instantiation no matter how many rounds run.
            partner.fields[3] = Value::sym(if r == 0 { "yes" } else { "no" });
            batch.push(partner);
        }
        rounds.push(batch);
    }
    AdversarialInstance { classes, production, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = random_system(7, GenConfig::default());
        let b = random_system(7, GenConfig::default());
        assert_eq!(a.productions.len(), b.productions.len());
        for (x, y) in a.productions.iter().zip(&b.productions) {
            assert_eq!(format!("{x}"), format!("{y}"));
        }
    }

    #[test]
    fn generated_productions_are_valid() {
        for seed in 0..20 {
            let s = random_system(seed, GenConfig::default());
            assert_eq!(s.productions.len(), 6);
            for p in &s.productions {
                assert!(p.num_pos >= 1);
            }
        }
    }

    #[test]
    fn long_chain_shape() {
        let mut r = ClassRegistry::new();
        let p = long_chain(&mut r, 10, "chain10");
        assert_eq!(p.ces.len(), 10);
        assert_eq!(p.num_pos, 10);
        let wmes = chain_wmes(&r, 10);
        assert_eq!(wmes.len(), 10);
        // The chain wmes satisfy the production exactly once.
        let mut store = crate::token::WmeStore::new();
        for w in wmes {
            store.add(w);
        }
        let insts = crate::naive::match_production(&p, &store);
        assert_eq!(insts.len(), 1);
    }

    #[test]
    fn adversarial_chain_is_deterministic_and_oracle_small() {
        let cfg = AdversarialConfig { groups: 3, rounds: 8 };
        let a = adversarial_chain(cfg);
        let b = adversarial_chain(cfg);
        assert_eq!(format!("{}", a.production), format!("{}", b.production));
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.production.ces.len(), 7, "anchor + 3 items + 3 partners");
        // Bilinear planning splits it at k0 = 1 into prefix + one group per
        // item/partner pair.
        let groups = crate::bilinear::plan_bilinear(&a.production, 1).unwrap();
        assert_eq!(groups.len(), 4);
        // The full load matches exactly once (the all-selected combination).
        let mut store = crate::token::WmeStore::new();
        for batch in &a.rounds {
            for w in batch {
                store.add(w.clone());
            }
        }
        let insts = crate::naive::match_production(&a.production, &store);
        assert_eq!(insts.len(), 1);
    }

    #[test]
    fn adversarial_chain_blows_up_linear_but_not_bilinear() {
        use crate::network::{NetworkOrg, ReteNetwork};
        use crate::serial::SerialEngine;
        use std::sync::Arc;
        let run = |org: NetworkOrg, rounds: usize| -> u64 {
            let inst = adversarial_chain(AdversarialConfig { groups: 3, rounds });
            let mut e = SerialEngine::new(ReteNetwork::new());
            e.add_production(Arc::new(inst.production), org).unwrap();
            for batch in inst.rounds {
                e.apply_changes(batch, vec![]);
            }
            e.total_tasks()
        };
        let groups = {
            let inst = adversarial_chain(AdversarialConfig { groups: 3, rounds: 2 });
            crate::bilinear::plan_bilinear(&inst.production, 1).unwrap()
        };
        // Doubling the load must grow linear work ≈8× (cubic) but bilinear
        // work only ≈2× (linear); leave slack for constant terms.
        let lin_s = run(NetworkOrg::Linear, 12);
        let lin_d = run(NetworkOrg::Linear, 24);
        let bil_s = run(NetworkOrg::Bilinear(groups.clone()), 12);
        let bil_d = run(NetworkOrg::Bilinear(groups), 24);
        assert!(
            lin_d as f64 / (lin_s as f64) > 4.0,
            "linear must grow super-quadratically: {lin_s} → {lin_d}"
        );
        assert!(
            bil_d as f64 / (bil_s as f64) < 3.0,
            "bilinear must stay near-linear: {bil_s} → {bil_d}"
        );
        assert!(lin_d / bil_d >= 5, "worst case must dominate: {lin_d} vs {bil_d}");
    }

    #[test]
    fn random_wmes_cover_classes() {
        let s = random_system(3, GenConfig::default());
        let mut rng = XorShift::new(99);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.random_wme(&mut rng).class);
        }
        assert!(seen.len() >= 2);
    }
}
