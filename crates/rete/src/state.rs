//! Per-session mutable match state, split from the network topology.
//!
//! The compiled network (alpha index, beta DAG, intern tables) is
//! read-mostly: after the base productions are compiled it changes only
//! when a chunk is added. Everything a *run* mutates — working memory and
//! the hashed left/right token memories — lives here instead, so N
//! sessions can share one frozen base topology
//! ([`crate::session::Topology`]) while each owns its `MatchState`. The
//! §5.2 state update for a session's chunk runs against that session's
//! state only.

use crate::memory::MemoryTable;
use crate::token::WmeStore;

/// The mutable half of a match engine: working memory + token memories.
pub struct MatchState {
    /// Hashed left/right token memories (§6.1 memory lines).
    pub mem: MemoryTable,
    /// Working-memory store.
    pub store: WmeStore,
}

impl MatchState {
    /// Fresh state with the default memory-table size.
    pub fn new() -> MatchState {
        MatchState::with_memory(4096)
    }

    /// Fresh state with an explicit memory-table size (tests use 1 line to
    /// force worst-case collisions).
    pub fn with_memory(lines: usize) -> MatchState {
        MatchState { mem: MemoryTable::new(lines), store: WmeStore::new() }
    }
}

impl Default for MatchState {
    fn default() -> MatchState {
        MatchState::new()
    }
}

impl std::fmt::Debug for MatchState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MatchState({} live wmes, {} memory lines)",
            self.store.live_count(),
            self.mem.num_lines()
        )
    }
}
