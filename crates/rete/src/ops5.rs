//! A complete OPS5 runtime: the match–select–fire recognize-act cycle.
//!
//! "Production systems repeatedly cycle through three phases: match, select
//! and fire. The matcher first updates the CS with all of the current
//! matches for the productions. Conflict resolution selects one of these
//! instantiations, removes it, and then fires it" (§2.1). This is the OPS5
//! half of PSM-E — Soar's fire-everything semantics live in `psme-soar`.

use crate::network::NetworkOrg;
use crate::serial::SerialEngine;
use crate::ReteNetwork;
use psme_ops::{
    gensym, ConcreteAction, ConflictSet, Production, Wme, WmeId,
};
use std::sync::Arc;

/// Why an OPS5 run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ops5Stop {
    /// `(halt)` executed.
    Halted,
    /// No instantiation left to fire.
    Quiescent,
    /// The cycle budget ran out.
    CycleLimit,
}

/// An OPS5 production-system runtime over the serial engine.
pub struct Ops5Runtime {
    /// The match engine.
    pub engine: SerialEngine,
    /// The conflict set (LEX strategy).
    pub cs: ConflictSet,
    /// `(write …)` output.
    pub output: Vec<String>,
    /// Class declarations (for RHS `make`).
    pub classes: psme_ops::ClassRegistry,
    prods: std::collections::HashMap<psme_ops::Symbol, Arc<Production>>,
    fired_count: u64,
}

impl Ops5Runtime {
    /// Build a runtime from a production set and its class declarations.
    pub fn new(
        productions: Vec<Arc<Production>>,
        classes: psme_ops::ClassRegistry,
    ) -> Result<Ops5Runtime, crate::BuildError> {
        let mut net = ReteNetwork::new();
        let mut prods = std::collections::HashMap::new();
        for p in &productions {
            net.add_production(p.clone(), NetworkOrg::Linear)?;
            prods.insert(p.name, p.clone());
        }
        Ok(Ops5Runtime {
            engine: SerialEngine::new(net),
            cs: ConflictSet::new(),
            output: Vec::new(),
            classes,
            prods,
            fired_count: 0,
        })
    }

    /// Add wmes to working memory (matching immediately, as the OPS5
    /// top-level `make` does).
    pub fn make(&mut self, wmes: Vec<Wme>) {
        let out = self.engine.apply_changes(wmes, vec![]);
        self.absorb(out.cs);
    }

    fn absorb(&mut self, delta: crate::CsDelta) {
        for i in delta.removed {
            self.cs.remove(&i);
        }
        for i in delta.added {
            let spec = self.prods.get(&i.prod).map(|p| p.test_count()).unwrap_or(0);
            self.cs.add(i, spec);
        }
    }

    /// Productions fired so far.
    pub fn fired(&self) -> u64 {
        self.fired_count
    }

    /// Fire one instantiation chosen by LEX. Returns `false` at quiescence.
    pub fn step(&mut self) -> Result<bool, Ops5Stop> {
        let Some(inst) = self.cs.select_lex() else {
            return Ok(false);
        };
        self.fired_count += 1;
        let prod = self.prods.get(&inst.prod).expect("fired production exists").clone();
        let wme_arcs: Vec<Arc<Wme>> =
            inst.wmes.iter().map(|id| self.engine.state.store.get(*id).clone()).collect();
        let refs: Vec<&Wme> = wme_arcs.iter().map(|a| a.as_ref()).collect();
        let mut bindings = prod.bindings_of(&refs);
        let actions = prod.eval_rhs(&mut bindings, &mut || gensym("g"));

        let mut adds: Vec<Wme> = Vec::new();
        let mut removes: Vec<WmeId> = Vec::new();
        let mut halt = false;
        for act in actions {
            match act {
                ConcreteAction::Make(class, fields) => {
                    if let Some(d) = self.classes.get(class) {
                        adds.push(Wme::with_fields(d, &fields));
                    }
                }
                ConcreteAction::RemoveCe(k) => {
                    removes.push(inst.wmes[k as usize - 1]);
                }
                ConcreteAction::ModifyCe(k, fields) => {
                    let id = inst.wmes[k as usize - 1];
                    let old = self.engine.state.store.get(id).clone();
                    let mut new = (*old).clone();
                    for (f, v) in fields {
                        new.fields[f as usize] = v;
                    }
                    removes.push(id);
                    adds.push(new);
                }
                ConcreteAction::Write(s) => self.output.push(s),
                ConcreteAction::Halt => halt = true,
            }
        }
        removes.sort_unstable();
        removes.dedup();
        let out = self.engine.apply_changes(adds, removes);
        self.absorb(out.cs);
        if halt {
            Err(Ops5Stop::Halted)
        } else {
            Ok(true)
        }
    }

    /// Run the recognize-act cycle for up to `max_cycles` firings.
    pub fn run(&mut self, max_cycles: u64) -> Ops5Stop {
        for _ in 0..max_cycles {
            match self.step() {
                Ok(true) => {}
                Ok(false) => return Ops5Stop::Quiescent,
                Err(stop) => return stop,
            }
        }
        Ops5Stop::CycleLimit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_ops::{parse_program, parse_wme, ClassRegistry};

    /// The classic "counter" OPS5 program: counts down with modify.
    #[test]
    fn countdown_with_modify() {
        let mut classes = ClassRegistry::new();
        let prods = parse_program(
            "(literalize count n)
             (p decrement (count ^n { <x> > 0 }) -->
                (bind <m> (compute <x> - 1))
                (write tick)
                (modify 1 ^n <m>))
             (p done (count ^n 0) --> (write liftoff) (halt))",
            &mut classes,
        )
        .unwrap()
        .into_iter()
        .map(Arc::new)
        .collect();
        let mut rt = Ops5Runtime::new(prods, classes.clone()).unwrap();
        rt.make(vec![parse_wme("(count ^n 3)", &classes).unwrap()]);
        let stop = rt.run(100);
        assert_eq!(stop, Ops5Stop::Halted);
        assert_eq!(rt.output, vec!["tick", "tick", "tick", "liftoff"]);
        assert_eq!(rt.fired(), 4);
    }

    /// LEX recency: the most recently touched data is worked on first.
    #[test]
    fn lex_prefers_recent_wmes() {
        let mut classes = ClassRegistry::new();
        let prods = parse_program(
            "(literalize item name)
             (p consume (item ^name <n>) --> (write <n>) (remove 1))",
            &mut classes,
        )
        .unwrap()
        .into_iter()
        .map(Arc::new)
        .collect();
        let mut rt = Ops5Runtime::new(prods, classes.clone()).unwrap();
        rt.make(vec![
            parse_wme("(item ^name first)", &classes).unwrap(),
            parse_wme("(item ^name second)", &classes).unwrap(),
        ]);
        assert_eq!(rt.run(10), Ops5Stop::Quiescent);
        // LEX pops the most recent wme first.
        assert_eq!(rt.output, vec!["second", "first"]);
    }

    #[test]
    fn refraction_prevents_refiring() {
        let mut classes = ClassRegistry::new();
        let prods = parse_program(
            "(literalize fact f)
             (p note (fact ^f x) --> (write saw))",
            &mut classes,
        )
        .unwrap()
        .into_iter()
        .map(Arc::new)
        .collect();
        let mut rt = Ops5Runtime::new(prods, classes.clone()).unwrap();
        rt.make(vec![parse_wme("(fact ^f x)", &classes).unwrap()]);
        assert_eq!(rt.run(10), Ops5Stop::Quiescent);
        assert_eq!(rt.output, vec!["saw"], "fires once, then refraction holds");
    }

    #[test]
    fn cycle_limit_guards_runaways() {
        let mut classes = ClassRegistry::new();
        let prods = parse_program(
            "(literalize tok v)
             (p spin (tok ^v <x>) --> (modify 1 ^v <x>))",
            &mut classes,
        )
        .unwrap()
        .into_iter()
        .map(Arc::new)
        .collect();
        let mut rt = Ops5Runtime::new(prods, classes.clone()).unwrap();
        rt.make(vec![parse_wme("(tok ^v a)", &classes).unwrap()]);
        assert_eq!(rt.run(25), Ops5Stop::CycleLimit);
    }
}
