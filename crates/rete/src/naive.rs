//! A brute-force matcher used as a correctness oracle.
//!
//! Recomputes the complete conflict set from scratch by backtracking over
//! working memory — no state saving, no sharing, no network. Exponential in
//! principle, fine at test scale, and independent enough from the Rete
//! implementation to catch semantic bugs in either.

use crate::token::WmeStore;
use psme_ops::{Cond, CondElem, FieldTest, Instantiation, Production, Value, Wme, WmeId};
use std::collections::HashSet;

struct Ctx<'a> {
    prod: &'a Production,
    live: Vec<(WmeId, &'a Wme)>,
    env: Vec<Option<Value>>,
    chosen: Vec<WmeId>,
    out: Vec<Instantiation>,
}

/// Try to match `w` against `c` under the current environment; on success
/// push any new bindings onto `trail` and return true.
fn test_cond(c: &Cond, w: &Wme, env: &mut [Option<Value>], trail: &mut Vec<usize>) -> bool {
    if w.class != c.class {
        return false;
    }
    for t in &c.tests {
        match *t {
            FieldTest::Const { field, pred, value } => {
                if !pred.eval(w.field(field), value) {
                    return false;
                }
            }
            FieldTest::Var { field, pred, var } => {
                let v = w.field(field);
                // Variables only match present attributes (see build.rs).
                if v.is_nil() {
                    return false;
                }
                match env[var.0 as usize] {
                    Some(bound) => {
                        if !pred.eval(v, bound) {
                            return false;
                        }
                    }
                    None => {
                        debug_assert_eq!(pred, psme_ops::Pred::Eq);
                        env[var.0 as usize] = Some(v);
                        trail.push(var.0 as usize);
                    }
                }
            }
        }
    }
    true
}

fn unwind(env: &mut [Option<Value>], trail: &[usize], from: usize) {
    for &i in &trail[from..] {
        env[i] = None;
    }
}

/// Does any combination of live wmes satisfy the conjunction `cs` under the
/// current environment? (Used for negated CEs with `cs.len() == 1` and for
/// NCC groups.)
fn exists_conj(ctx: &mut Ctx<'_>, cs: &[Cond], depth: usize) -> bool {
    if depth == cs.len() {
        return true;
    }
    let mut trail = Vec::new();
    for i in 0..ctx.live.len() {
        let (_, w) = ctx.live[i];
        let mark = trail.len();
        if test_cond(&cs[depth], w, &mut ctx.env, &mut trail)
            && exists_conj(ctx, cs, depth + 1)
        {
            unwind(&mut ctx.env, &trail, 0);
            return true;
        }
        unwind(&mut ctx.env, &trail, mark);
        trail.truncate(mark);
    }
    false
}

fn recurse(ctx: &mut Ctx<'_>, ce_idx: usize, store: &WmeStore) {
    if ce_idx == ctx.prod.ces.len() {
        let tags = ctx.chosen.iter().map(|&w| store.tag(w)).collect();
        ctx.out.push(Instantiation {
            prod: ctx.prod.name,
            wmes: ctx.chosen.clone(),
            tags,
        });
        return;
    }
    // Clone the CE description to avoid borrowing ctx across the recursion.
    let ce = ctx.prod.ces[ce_idx].clone();
    match ce {
        CondElem::Pos(c) => {
            for i in 0..ctx.live.len() {
                let (id, w) = ctx.live[i];
                let mut trail = Vec::new();
                if test_cond(&c, w, &mut ctx.env, &mut trail) {
                    ctx.chosen.push(id);
                    recurse(ctx, ce_idx + 1, store);
                    ctx.chosen.pop();
                }
                unwind(&mut ctx.env, &trail, 0);
            }
        }
        CondElem::Neg(c) => {
            if !exists_conj(ctx, std::slice::from_ref(&c), 0) {
                recurse(ctx, ce_idx + 1, store);
            }
        }
        CondElem::Ncc(cs) => {
            if !exists_conj(ctx, &cs, 0) {
                recurse(ctx, ce_idx + 1, store);
            }
        }
    }
}

/// All current instantiations of `prod` against the live wmes of `store`.
pub fn match_production(prod: &Production, store: &WmeStore) -> Vec<Instantiation> {
    let live: Vec<(WmeId, &Wme)> = store.iter_alive().map(|(id, w)| (id, w.as_ref())).collect();
    let mut ctx = Ctx {
        prod,
        live,
        env: vec![None; prod.var_names.len()],
        chosen: Vec::new(),
        out: Vec::new(),
    };
    recurse(&mut ctx, 0, store);
    ctx.out
}

/// The complete conflict set for a production collection.
pub fn match_all<'a>(
    prods: impl IntoIterator<Item = &'a Production>,
    store: &WmeStore,
) -> HashSet<Instantiation> {
    let mut out = HashSet::new();
    for p in prods {
        out.extend(match_production(p, store));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_ops::{parse_production, parse_wme, ClassRegistry};

    fn setup() -> (ClassRegistry, WmeStore) {
        let mut r = ClassRegistry::new();
        r.declare_str("block", &["name", "color", "on"]);
        r.declare_str("hand", &["state"]);
        (r, WmeStore::new())
    }

    #[test]
    fn matches_paper_production() {
        let (mut r, mut s) = setup();
        let p = parse_production(
            "(p graspable (block ^name <b> ^color blue) -(block ^on <b>) (hand ^state free)
             --> (halt))",
            &mut r,
        )
        .unwrap();
        s.add(parse_wme("(block ^name b1 ^color blue)", &r).unwrap());
        s.add(parse_wme("(hand ^state free)", &r).unwrap());
        assert_eq!(match_production(&p, &s).len(), 1);
        // Stack something on b1: negation now blocks.
        let (on, _) = s.add(parse_wme("(block ^name b2 ^color red ^on b1)", &r).unwrap());
        assert_eq!(match_production(&p, &s).len(), 0);
        s.remove(on);
        assert_eq!(match_production(&p, &s).len(), 1);
    }

    #[test]
    fn same_wme_may_fill_two_ces() {
        let (mut r, mut s) = setup();
        let p = parse_production(
            "(p twice (block ^color blue) (block ^color blue) --> (halt))",
            &mut r,
        )
        .unwrap();
        s.add(parse_wme("(block ^name b1 ^color blue)", &r).unwrap());
        // Both CEs can bind the same wme: 1 wme → 1 combination… of pairs
        // (w,w): OPS5 allows it, so exactly one instantiation.
        assert_eq!(match_production(&p, &s).len(), 1);
        s.add(parse_wme("(block ^name b2 ^color blue)", &r).unwrap());
        // 2 wmes → 4 ordered pairs.
        assert_eq!(match_production(&p, &s).len(), 4);
    }

    #[test]
    fn ncc_blocks_on_conjunction_only() {
        let (mut r, mut s) = setup();
        let p = parse_production(
            "(p ncc (hand ^state <h>)
                -{ (block ^name <b> ^on <h>) (block ^name <b> ^color red) }
             --> (halt))",
            &mut r,
        )
        .unwrap();
        s.add(parse_wme("(hand ^state h1)", &r).unwrap());
        // Only one conjunct present: no block is both on h1 and red.
        s.add(parse_wme("(block ^name b1 ^on h1)", &r).unwrap());
        assert_eq!(match_production(&p, &s).len(), 1);
        // Complete the conjunction.
        s.add(parse_wme("(block ^name b1 ^color red)", &r).unwrap());
        assert_eq!(match_production(&p, &s).len(), 0);
    }

    #[test]
    fn match_all_unions_productions() {
        let (mut r, mut s) = setup();
        let p1 = parse_production("(p a (hand ^state free) --> (halt))", &mut r).unwrap();
        let p2 = parse_production("(p b (hand ^state <x>) --> (halt))", &mut r).unwrap();
        s.add(parse_wme("(hand ^state free)", &r).unwrap());
        let all = match_all([&p1, &p2], &s);
        assert_eq!(all.len(), 2);
    }
}
