//! Shared network topology + per-session chunk overlays.
//!
//! The serving regime (many concurrent Soar sessions over one worker pool)
//! splits the match network into:
//!
//! * [`Topology`] — a **frozen, immutable** compiled base network shared by
//!   every session via `Arc`. Alpha index, beta DAG, intern tables: all
//!   read-only after freeze.
//! * [`SessionNet`] — one per session: the shared base plus a
//!   session-private **overlay region**. Chunks a session learns at run
//!   time are compiled into the overlay exactly as §5.1 would append them
//!   to a monolithic network: node IDs are strictly increasing (overlay
//!   ids start at the base node count), alpha memories the chunk needs are
//!   either found in the frozen base intern table or interned privately
//!   above the base id range, and the successor-list splices a chunk would
//!   have performed on base nodes/memories are recorded as **overlay
//!   deltas** ([`SessionNet::extra_out_edges`], alpha splices) consulted
//!   during propagation instead of mutating the base.
//!
//! Because the overlay replays the monolithic append order exactly — same
//! id assignment, same per-node successor order (base edges first, then
//! splices in chronological order) — a session that learns chunk C over a
//! frozen base B is *node-for-node identical* to a monolithic network built
//! as B then C. That is the invariant the overlay-splice differential test
//! pins, and what makes serve-vs-solo traces bit-for-bit comparable.
//!
//! No cross-session interference is possible by construction: the base is
//! behind an immutable `Arc`, and every mutable structure (overlay vectors,
//! splice maps, and the whole [`crate::state::MatchState`]) is owned by one
//! session.

use crate::alpha::{AlphaMemId, AlphaNet, AlphaStats, AlphaTest, IntraTest};
use crate::build::{build_production, AddResult, BuildError, BuildTarget};
use crate::network::{NetworkOrg, ProdInfo, ReteNetwork};
use crate::node::{BetaNode, NodeId, NodeKind, NodeSignature, RightSrc, Side};
use crate::util::FxHashMap;
use crate::view::{ReteBuild, ReteView};
use psme_ops::{Production, Symbol, Wme};
use std::sync::Arc;

/// An immutable, shareable compiled base network.
///
/// Freezing is a type-level promise: nothing hands out `&mut ReteNetwork`
/// again, so any number of sessions may read it concurrently.
pub struct Topology {
    net: ReteNetwork,
}

impl Topology {
    /// Freeze a compiled network into a shareable topology.
    pub fn freeze(net: ReteNetwork) -> Arc<Topology> {
        Arc::new(Topology { net })
    }

    /// The frozen network.
    #[inline]
    pub fn net(&self) -> &ReteNetwork {
        &self.net
    }

    /// Beta nodes in the base (including the root).
    pub fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    /// Productions compiled into the base.
    pub fn num_prods(&self) -> usize {
        self.net.prods.len()
    }
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Topology({:?})", self.net)
    }
}

/// `true` when bit `i` is set. An empty bitmap (no splice ever recorded —
/// the base-only common case) answers in one bounds check.
#[inline]
fn bit_set(bits: &[u64], i: u32) -> bool {
    match bits.get((i >> 6) as usize) {
        Some(w) => w & (1u64 << (i & 63)) != 0,
        None => false,
    }
}

/// Set bit `i`, lazily allocating the bitmap to cover `cap` ids on first
/// use (sessions that never splice never pay for the words).
#[inline]
fn set_bit(bits: &mut Vec<u64>, cap: u32, i: u32) {
    if bits.is_empty() {
        bits.resize((cap as usize).div_ceil(64).max(1), 0);
    }
    bits[(i >> 6) as usize] |= 1u64 << (i & 63);
}

/// Set bit `i`, growing the bitmap as needed (the retired-node mask spans
/// base *and* overlay ids, and the overlay keeps growing after a reorg).
#[inline]
fn set_bit_grow(bits: &mut Vec<u64>, i: u32) {
    let word = (i >> 6) as usize;
    if bits.len() <= word {
        bits.resize(word + 1, 0);
    }
    bits[word] |= 1u64 << (i & 63);
}

/// A session's view of the network: shared frozen base + private overlay.
pub struct SessionNet {
    topo: Arc<Topology>,
    /// Base node / alpha-memory / production counts at freeze time (the
    /// overlay id offsets; constant because the base is immutable).
    base_nodes: NodeId,
    base_alpha: u32,
    base_prods: u32,
    sharing: bool,
    /// Overlay beta nodes; global id = `base_nodes + index`.
    over_betas: Vec<BetaNode>,
    /// Overlay productions; global index = `base_prods + index`.
    over_prods: Vec<ProdInfo>,
    /// Overlay alpha memories (local ids; global id = `base_alpha + local`).
    over_alpha: AlphaNet,
    /// Successor edges a chunk spliced onto *base* beta nodes.
    beta_splices: FxHashMap<NodeId, Vec<(NodeId, Side)>>,
    /// Successor edges a chunk spliced onto *base* alpha memories.
    alpha_splices: FxHashMap<u32, Vec<(NodeId, Side)>>,
    /// Presence bitmap over base beta nodes: bit set ⇔ `beta_splices` has
    /// an entry. Empty until the first splice, so the overwhelmingly common
    /// "no delta" case — every successor walk of a base-only session, and
    /// the resume path replaying a journal — is one branch on an empty Vec
    /// instead of an `FxHashMap` probe per node.
    beta_splice_bits: Vec<u64>,
    /// Same, over base alpha-memory ids for `alpha_splices`.
    alpha_splice_bits: Vec<u64>,
    /// Signature index over overlay nodes (chunk-to-chunk sharing).
    over_sigs: FxHashMap<NodeSignature, NodeId>,
    /// Production names recorded against shared *base* nodes (the
    /// monolithic build would have pushed onto the node's `prod_names`).
    extra_prod_names: FxHashMap<NodeId, Vec<Symbol>>,
    /// Retired-node mask over **global** ids (base and overlay): a
    /// reorganization cannot unplug the frozen base's successor lists, so
    /// retired targets are masked out of propagation via
    /// [`ReteView::edge_live`] instead. Empty until the first reorg.
    retired_bits: Vec<u64>,
    /// Number of bits set in `retired_bits`.
    retired_count: usize,
    /// Replacement [`ProdInfo`] for *base* productions this session has
    /// reorganized (overlay productions are swapped in place). Empty in the
    /// common un-reorganized session.
    prod_overrides: FxHashMap<u32, ProdInfo>,
}

impl SessionNet {
    /// A fresh session view over a frozen base, with an empty overlay.
    pub fn new(topo: Arc<Topology>) -> SessionNet {
        let base_nodes = topo.net().num_nodes() as NodeId;
        let base_alpha = topo.net().alpha.len() as u32;
        let base_prods = topo.net().prods.len() as u32;
        let sharing = topo.net().sharing;
        let mut over_alpha = AlphaNet::new();
        over_alpha.use_index = topo.net().alpha.use_index;
        SessionNet {
            topo,
            base_nodes,
            base_alpha,
            base_prods,
            sharing,
            over_betas: Vec::new(),
            over_prods: Vec::new(),
            over_alpha,
            beta_splices: FxHashMap::default(),
            alpha_splices: FxHashMap::default(),
            beta_splice_bits: Vec::new(),
            alpha_splice_bits: Vec::new(),
            over_sigs: FxHashMap::default(),
            extra_prod_names: FxHashMap::default(),
            retired_bits: Vec::new(),
            retired_count: 0,
            prod_overrides: FxHashMap::default(),
        }
    }

    /// Was `id` masked out by a reorganization in this session?
    #[inline]
    pub fn is_retired(&self, id: NodeId) -> bool {
        bit_set(&self.retired_bits, id)
    }

    /// Nodes this session has retired (masked) via reorganization.
    pub fn retired_nodes(&self) -> usize {
        self.retired_count
    }

    /// Base productions this session has reorganized.
    pub fn reorganized_prods(&self) -> usize {
        self.prod_overrides.len()
    }

    /// The shared base topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Nodes in the session's private overlay region.
    pub fn overlay_nodes(&self) -> usize {
        self.over_betas.len()
    }

    /// Productions (chunks) in the overlay.
    pub fn overlay_prods(&self) -> usize {
        self.over_prods.len()
    }

    /// First overlay node id (== base node count at freeze).
    pub fn base_nodes(&self) -> NodeId {
        self.base_nodes
    }

    /// Total successor edges recorded as splices onto base nodes or base
    /// alpha memories (telemetry: the overlay's footprint on the base).
    pub fn splice_edges(&self) -> usize {
        self.beta_splices.values().map(Vec::len).sum::<usize>()
            + self.alpha_splices.values().map(Vec::len).sum::<usize>()
    }

    /// Production names recorded on a shared base node by overlay chunks.
    pub fn extra_prod_names_of(&self, id: NodeId) -> &[Symbol] {
        self.extra_prod_names.get(&id).map(|v| &v[..]).unwrap_or(&[])
    }

    /// Invariant check (tests): each presence bit is set iff its splice map
    /// has a (non-empty) entry.
    #[doc(hidden)]
    pub fn splice_bits_consistent(&self) -> bool {
        // A set bit with no map entry would only cost a wasted probe, but
        // the maintenance paths never leave one (rollback recomputes
        // exactly) — so demand exact agreement in both directions.
        (0..self.base_nodes)
            .all(|id| bit_set(&self.beta_splice_bits, id) == self.beta_splices.contains_key(&id))
            && (0..self.base_alpha).all(|id| {
                bit_set(&self.alpha_splice_bits, id) == self.alpha_splices.contains_key(&id)
            })
    }

    /// Wire `child` as a successor of `src`, splicing when `src` is a base
    /// node (the base is immutable) and appending in place when it is an
    /// overlay node.
    fn wire_edge(&mut self, src: NodeId, child: NodeId, side: Side) {
        if src < self.base_nodes {
            set_bit(&mut self.beta_splice_bits, self.base_nodes, src);
            self.beta_splices.entry(src).or_default().push((child, side));
        } else {
            self.over_betas[(src - self.base_nodes) as usize].out_edges.push((child, side));
        }
    }

    /// Undo a failed overlay build: drop overlay nodes `>= first_new` and
    /// every splice / signature / overlay-alpha successor pointing at them.
    /// Mirrors `ReteNetwork::rollback` scoped to the overlay (the base
    /// needs no surgery — it was never touched).
    fn rollback_overlay(&mut self, first_new: NodeId) {
        self.over_betas.truncate((first_new - self.base_nodes) as usize);
        for n in &mut self.over_betas {
            n.out_edges.retain(|&(c, _)| c < first_new);
        }
        for v in self.beta_splices.values_mut() {
            v.retain(|&(c, _)| c < first_new);
        }
        self.beta_splices.retain(|_, v| !v.is_empty());
        for v in self.alpha_splices.values_mut() {
            v.retain(|&(c, _)| c < first_new);
        }
        self.alpha_splices.retain(|_, v| !v.is_empty());
        // Recompute the presence bitmaps from the surviving splice maps
        // (rollback is rare; exactness beats cleverness here).
        self.beta_splice_bits.iter_mut().for_each(|w| *w = 0);
        for &id in self.beta_splices.keys() {
            set_bit(&mut self.beta_splice_bits, self.base_nodes, id);
        }
        self.alpha_splice_bits.iter_mut().for_each(|w| *w = 0);
        for &id in self.alpha_splices.keys() {
            set_bit(&mut self.alpha_splice_bits, self.base_alpha, id);
        }
        self.over_sigs.retain(|_, &mut id| id < first_new);
        for i in 0..self.over_alpha.len() {
            let keep: Vec<_> = self
                .over_alpha
                .get(AlphaMemId(i as u32))
                .successors
                .iter()
                .copied()
                .filter(|&(c, _)| c < first_new)
                .collect();
            self.over_alpha.mems_mut()[i].successors = keep;
        }
        // Overlay alpha memories interned by the failed build stay in
        // place, successor-less and inert — same policy as the monolithic
        // rollback.
        #[cfg(debug_assertions)]
        self.over_alpha.validate_index().expect("overlay alpha index consistent after rollback");
    }
}

impl ReteView for SessionNet {
    #[inline]
    fn node(&self, id: NodeId) -> &BetaNode {
        if id < self.base_nodes {
            self.topo.net().node(id)
        } else {
            &self.over_betas[(id - self.base_nodes) as usize]
        }
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.base_nodes as usize + self.over_betas.len()
    }

    #[inline]
    fn extra_out_edges(&self, id: NodeId) -> &[(NodeId, Side)] {
        if !bit_set(&self.beta_splice_bits, id) {
            return &[];
        }
        self.beta_splices.get(&id).map(|v| &v[..]).unwrap_or(&[])
    }

    #[inline]
    fn prod_info(&self, prod: u32) -> &ProdInfo {
        if prod < self.base_prods {
            if !self.prod_overrides.is_empty() {
                if let Some(info) = self.prod_overrides.get(&prod) {
                    return info;
                }
            }
            &self.topo.net().prods[prod as usize]
        } else {
            &self.over_prods[(prod - self.base_prods) as usize]
        }
    }

    #[inline]
    fn num_prods(&self) -> usize {
        self.base_prods as usize + self.over_prods.len()
    }

    fn classify_wme(&self, w: &Wme, hit: &mut dyn FnMut(NodeId, Side)) -> AlphaStats {
        // Base memories are hit in ascending id order; for each, base
        // successors precede the session's splices (chronological), which
        // is exactly the monolithic append order. Overlay memories follow —
        // their global ids all exceed every base id, so the combined hit
        // order stays ascending, matching a monolithic network that
        // compiled base-then-chunks.
        let mut stats = self.topo.net().alpha.classify(w, |m| {
            for &(child, side) in &m.successors {
                hit(child, side);
            }
            if bit_set(&self.alpha_splice_bits, m.id.0) {
                if let Some(extra) = self.alpha_splices.get(&m.id.0) {
                    for &(child, side) in extra {
                        hit(child, side);
                    }
                }
            }
        });
        if !self.over_alpha.is_empty() {
            let os = self.over_alpha.classify(w, |m| {
                for &(child, side) in &m.successors {
                    hit(child, side);
                }
            });
            stats.tests_run += os.tests_run;
            stats.mems_matched += os.mems_matched;
            stats.probes += os.probes;
            stats.candidates += os.candidates;
            stats.tests_saved += os.tests_saved;
        }
        stats
    }

    #[inline]
    fn edge_live(&self, id: NodeId) -> bool {
        !bit_set(&self.retired_bits, id)
    }
}

impl BuildTarget for SessionNet {
    fn intern_alpha(
        &mut self,
        class: Symbol,
        tests: Vec<AlphaTest>,
        intra: Vec<IntraTest>,
    ) -> AlphaMemId {
        // Prefer a shared base memory (no insertion); fall back to a
        // session-private memory above the base id range.
        if let Some(id) = self.topo.net().alpha.lookup(class, &tests, &intra) {
            return id;
        }
        let (local, _) = self.over_alpha.intern(class, tests, intra);
        AlphaMemId(self.base_alpha + local.0)
    }

    fn find_shared_sig(&self, sig: &NodeSignature) -> Option<NodeId> {
        // The frozen base's sharing index cannot drop entries this session
        // retired, so both lookups filter through the session's mask —
        // sharing into a masked-dead node would build a chain whose
        // activations `edge_live` silently drops.
        self.topo
            .net()
            .find_shared(sig)
            .filter(|&id| !self.is_retired(id))
            .or_else(|| {
                if self.sharing {
                    self.over_sigs.get(sig).copied().filter(|&id| !self.is_retired(id))
                } else {
                    None
                }
            })
    }

    fn note_shared(&mut self, id: NodeId, prod_name: Symbol) -> (bool, usize, usize) {
        if id < self.base_nodes {
            let (two, cov, rcov, listed) = {
                let n = self.topo.net().node(id);
                (
                    n.is_two_input(),
                    n.coverage.len(),
                    n.right_coverage.len(),
                    n.prod_names.contains(&prod_name),
                )
            };
            let names = self.extra_prod_names.entry(id).or_default();
            if !listed && !names.contains(&prod_name) {
                names.push(prod_name);
            }
            (two, cov, rcov)
        } else {
            let n = &mut self.over_betas[(id - self.base_nodes) as usize];
            if !n.prod_names.contains(&prod_name) {
                n.prod_names.push(prod_name);
            }
            (n.is_two_input(), n.coverage.len(), n.right_coverage.len())
        }
    }

    fn push_node(&mut self, mut node: BetaNode) -> NodeId {
        let id = self.base_nodes + self.over_betas.len() as NodeId;
        node.id = id;
        let parent = node.parent;
        let right = node.right;
        let sig = node.signature();
        let is_prod = matches!(node.kind, NodeKind::Prod { .. });
        self.over_betas.push(node);
        // The root lives in the base, so every overlay node has a parent
        // edge to wire (possibly a splice onto a base node).
        self.wire_edge(parent, id, Side::Left);
        match right {
            Some(RightSrc::Alpha(a)) => {
                if a.0 < self.base_alpha {
                    set_bit(&mut self.alpha_splice_bits, self.base_alpha, a.0);
                    self.alpha_splices.entry(a.0).or_default().push((id, Side::Right));
                } else {
                    self.over_alpha.add_successor(AlphaMemId(a.0 - self.base_alpha), id);
                }
            }
            Some(RightSrc::Beta(b)) => self.wire_edge(b, id, Side::Right),
            None => {}
        }
        if self.sharing && !is_prod {
            self.over_sigs.insert(sig, id);
        }
        id
    }

    fn next_prod_index(&self) -> u32 {
        self.base_prods + self.over_prods.len() as u32
    }
}

impl ReteBuild for SessionNet {
    fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddResult, BuildError> {
        let first_new = self.num_nodes() as NodeId;
        match build_production(self, &prod, &org, None) {
            Ok((p_node, pos_slots, new_two, shared_two)) => {
                let prod_idx = self.base_prods + self.over_prods.len() as u32;
                self.over_prods.push(ProdInfo {
                    production: prod,
                    p_node,
                    pos_slots,
                    first_new,
                    new_two_input: new_two,
                    shared_two_input: shared_two,
                    org,
                });
                Ok(AddResult {
                    prod_idx,
                    first_new,
                    new_two_input: new_two,
                    shared_two_input: shared_two,
                    p_node,
                })
            }
            Err(e) => {
                self.rollback_overlay(first_new);
                Err(e)
            }
        }
    }

    fn reorg_build(
        &mut self,
        prod_idx: u32,
        org: NetworkOrg,
    ) -> Result<crate::view::ReorgBuild, BuildError> {
        if prod_idx as usize >= self.num_prods() {
            return Err(BuildError(format!("no production {prod_idx} to reorganize")));
        }
        let prod = self.prod_info(prod_idx).production.clone();
        let first_new = self.num_nodes() as NodeId;
        match build_production(self, &prod, &org, Some(prod_idx)) {
            Ok((p_node, pos_slots, new_two, shared_two)) => Ok(crate::view::ReorgBuild {
                prod_idx,
                org,
                first_new,
                p_node,
                pos_slots,
                new_two_input: new_two,
                shared_two_input: shared_two,
            }),
            Err(e) => {
                self.rollback_overlay(first_new);
                Err(e)
            }
        }
    }

    fn reorg_commit(&mut self, rb: crate::view::ReorgBuild) -> Vec<NodeId> {
        let name = self.prod_info(rb.prod_idx).production.name;
        let old_p = self.prod_info(rb.prod_idx).p_node;
        let old_chain = crate::view::chain_ancestors(self, old_p);
        let new_chain = crate::view::chain_ancestors(self, rb.p_node);
        let info = ProdInfo {
            production: self.prod_info(rb.prod_idx).production.clone(),
            p_node: rb.p_node,
            pos_slots: rb.pos_slots,
            first_new: rb.first_new,
            new_two_input: rb.new_two_input,
            shared_two_input: rb.shared_two_input,
            org: rb.org,
        };
        if rb.prod_idx < self.base_prods {
            self.prod_overrides.insert(rb.prod_idx, info);
        } else {
            self.over_prods[(rb.prod_idx - self.base_prods) as usize] = info;
        }
        let mut retired: Vec<NodeId> = Vec::new();
        for &id in &old_chain {
            if new_chain.binary_search(&id).is_ok() {
                continue;
            }
            if id < self.base_nodes {
                // The frozen base list cannot lose the name; retire only
                // nodes this production owns outright, with no session
                // chunk recorded on them either. A base node shared with
                // another production simply stays live.
                let n = self.topo.net().node(id);
                if n.prod_names.len() == 1
                    && n.prod_names[0] == name
                    && self.extra_prod_names_of(id).is_empty()
                {
                    retired.push(id);
                }
            } else {
                let n = &mut self.over_betas[(id - self.base_nodes) as usize];
                n.prod_names.retain(|&s| s != name);
                if n.prod_names.is_empty() {
                    retired.push(id);
                }
            }
        }
        // Masking, not unplugging: frozen base successor lists keep their
        // edges, `edge_live` filters them out of every propagation path.
        for &id in &retired {
            set_bit_grow(&mut self.retired_bits, id);
        }
        self.retired_count += retired.len();
        // Keep chunk-to-chunk sharing away from masked nodes.
        self.over_sigs.retain(|_, id| retired.binary_search(id).is_err());
        retired
    }
}

impl std::fmt::Debug for SessionNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SessionNet(base {} nodes / {} prods, overlay {} nodes / {} prods, {} splices)",
            self.base_nodes,
            self.base_prods,
            self.over_betas.len(),
            self.over_prods.len(),
            self.splice_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ROOT;
    use psme_ops::{parse_production, ClassRegistry};

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("a", &["x", "y"]);
        r.declare_str("b", &["x", "y"]);
        r
    }

    fn base(r: &mut ClassRegistry) -> Arc<Topology> {
        let mut net = ReteNetwork::new();
        let p = parse_production("(p base (a ^x <v>) (b ^x <v>) --> (halt))", r).unwrap();
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        Topology::freeze(net)
    }

    #[test]
    fn empty_overlay_mirrors_base() {
        let mut r = reg();
        let topo = base(&mut r);
        let s = SessionNet::new(topo.clone());
        assert_eq!(s.num_nodes(), topo.num_nodes());
        assert_eq!(s.num_prods(), topo.num_prods());
        assert_eq!(s.overlay_nodes(), 0);
        assert_eq!(s.node(ROOT).kind, NodeKind::Root);
    }

    #[test]
    fn overlay_ids_match_monolithic_append() {
        // Building the same chunk into (a) a monolithic copy of the base
        // and (b) a session overlay must assign identical node ids,
        // production indices and alpha-memory ids.
        let mut r = reg();
        let mut mono = ReteNetwork::new();
        let pb = parse_production("(p base (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();
        mono.add_production(Arc::new(pb.clone()), NetworkOrg::Linear).unwrap();
        let topo = {
            let mut net = ReteNetwork::new();
            net.add_production(Arc::new(pb), NetworkOrg::Linear).unwrap();
            Topology::freeze(net)
        };
        let mut sess = SessionNet::new(topo);

        let chunk =
            parse_production("(p chunk (a ^x <v>) (b ^x <v>) (a ^y <v>) --> (halt))", &mut r)
                .unwrap();
        let rm = mono.add_production(Arc::new(chunk.clone()), NetworkOrg::Linear).unwrap();
        let rs = sess.add_production(Arc::new(chunk), NetworkOrg::Linear).unwrap();
        assert_eq!(rm, rs, "monolithic and overlay AddResults agree");
        assert_eq!(mono.num_nodes(), sess.num_nodes());
        assert_eq!(mono.alpha.len(), sess.base_alpha as usize + sess.over_alpha.len());
        // The chunk shares the base (a⋈b) prefix: its new nodes hang off a
        // base boundary node, visible as splices.
        assert!(sess.splice_edges() > 0);
        assert!(sess.splice_bits_consistent());
        // Edge chains equal the monolithic successor lists on every node.
        for id in 0..mono.num_nodes() as NodeId {
            let mono_edges = &ReteView::node(&mono, id).out_edges;
            let sess_edges: Vec<_> = sess
                .node(id)
                .out_edges
                .iter()
                .chain(sess.extra_out_edges(id))
                .copied()
                .collect();
            assert_eq!(*mono_edges, sess_edges, "node {id} successor order");
        }
    }

    #[test]
    fn failed_overlay_build_rolls_back() {
        let mut r = reg();
        let topo = base(&mut r);
        let mut sess = SessionNet::new(topo);
        let good =
            parse_production("(p g (a ^x <v>) (b ^x <v>) (b ^y <v>) --> (halt))", &mut r).unwrap();
        sess.add_production(Arc::new(good), NetworkOrg::Linear).unwrap();
        let nodes = sess.num_nodes();
        let splices = sess.splice_edges();
        let bad = parse_production("(p bad (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();
        let err = sess
            .add_production(Arc::new(bad), NetworkOrg::Bilinear(vec![vec![0], vec![1, 1]]))
            .unwrap_err();
        assert!(err.0.contains("partition"), "{err}");
        assert_eq!(sess.num_nodes(), nodes, "overlay rollback removed new nodes");
        assert_eq!(sess.splice_edges(), splices);
        assert_eq!(sess.overlay_prods(), 1);
        assert!(sess.splice_bits_consistent(), "rollback recomputes presence bitmaps");
    }

    #[test]
    fn fresh_session_skips_splice_probes_without_allocating() {
        let mut r = reg();
        let topo = base(&mut r);
        let s = SessionNet::new(topo);
        assert!(s.splice_bits_consistent());
        for id in 0..s.num_nodes() as NodeId {
            assert!(s.extra_out_edges(id).is_empty());
        }
    }
}
