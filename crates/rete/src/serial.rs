//! The serial reference engine.
//!
//! Deterministic single-threaded driver over the shared node semantics of
//! [`crate::process`]. It is the correctness oracle for the parallel engine
//! (identical conflict sets required), the trace producer for the Multimax
//! simulator, and the uniprocessor baseline of the paper's speedup figures.
//!
//! The engine is generic over its network view: `SerialEngine<ReteNetwork>`
//! (the default) owns a monolithic network, while
//! `SerialEngine<SessionNet>` drives a session's chunk overlay over a
//! shared frozen [`crate::session::Topology`]. Either way the mutable match
//! state (working memory + token memories) lives in a [`MatchState`] owned
//! by the engine — the topology/state split the serving layer multiplexes.

use crate::build::{AddResult, BuildError};
use crate::memory::MemoryTable;
use crate::network::{NetworkOrg, ReteNetwork};
use crate::node::{NodeId, NodeKind};
use crate::reorg::{ChainDetector, ReorgDecision};
use crate::process::{process_beta_scratch, process_wme_change, Activation, BetaScratch, CsChange};
use crate::state::MatchState;
use crate::token::{Token, WmeStore};
use crate::trace::{CycleTrace, Phase, RunTrace, TaskKind, TaskRecord};
use crate::update::seed_update;
use crate::util::FxHashMap;
use crate::view::{ReteBuild, ReteView};
use psme_ops::{Instantiation, Wme, WmeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// Net conflict-set delta of one cycle.
#[derive(Clone, Debug, Default)]
pub struct CsDelta {
    /// Instantiations that entered the conflict set.
    pub added: Vec<Instantiation>,
    /// Instantiations that left the conflict set.
    pub removed: Vec<Instantiation>,
}

/// Outcome of one match cycle.
#[derive(Clone, Debug, Default)]
pub struct CycleOutcome {
    /// Net conflict-set changes.
    pub cs: CsDelta,
    /// Tasks (node activations, including alpha tasks) executed.
    pub tasks: u64,
}

/// Outcome of a run-time production addition (build + state update).
#[derive(Debug)]
pub struct AddOutcome {
    /// Build result.
    pub add: AddResult,
    /// Tasks executed during the update phase.
    pub update_tasks: u64,
    /// Instantiations of the new production found in current WM.
    pub cs: CsDelta,
}

/// Outcome of a mid-run reorganization (rebuild + state update + commit).
///
/// No conflict-set delta: the update run re-derives exactly the
/// production's existing instantiations at the replacement P node, so the
/// conflict set is unchanged by construction (debug builds assert it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReorgOutcome {
    /// The reorganized production.
    pub prod_idx: u32,
    /// First node of the replacement subnetwork.
    pub first_new: NodeId,
    /// Replacement terminal node.
    pub p_node: NodeId,
    /// Tasks executed during the state-update phase.
    pub update_tasks: u64,
    /// Old-chain nodes retired to the inert pool.
    pub retired: usize,
}

/// Incrementally folded conflict-set delta: a keyed map updated per
/// P-node emission.
///
/// Weights may flicker during a cycle, so the conflict set is updated from
/// the *net* per-token delta at quiescence, which must be −1, 0 or +1.
/// Folding as emissions arrive (instead of buffering a raw change vector
/// and re-keying the whole thing at the barrier) means entries that cancel
/// within a cycle vanish immediately, the barrier sorts only the net
/// nonzero entries, and the raw vector's token clones are never stored.
#[derive(Clone, Debug, Default)]
pub struct CsFold {
    net: FxHashMap<(u32, Token), i32>,
}

impl CsFold {
    /// Fold one P-node emission in. Entries reaching net zero are removed
    /// on the spot.
    #[inline]
    pub fn add(&mut self, c: CsChange) {
        use std::collections::hash_map::Entry;
        match self.net.entry((c.prod, c.token)) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += c.delta;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                if c.delta != 0 {
                    e.insert(c.delta);
                }
            }
        }
    }

    /// Fold a worker's local map in at the cycle barrier.
    pub fn merge(&mut self, other: CsFold) {
        for ((prod, token), delta) in other.net {
            self.add(CsChange { prod, token, delta });
        }
    }

    /// Net nonzero entries currently held.
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// `true` when every emission cancelled out (or none arrived).
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    /// Resolve into a sorted [`CsDelta`] at quiescence.
    ///
    /// Ordering is by `(prod, instantiation wme list)` — i.e. wmes in CE
    /// order via `pos_slots`, not in token slot order. A token's slot
    /// layout is an artifact of the production's network organization
    /// (bilinear chains permute CE coverage), so sorting on the
    /// instantiation keeps the delta identical across organizations — the
    /// invariant mid-run reorganization depends on. For linear chains the
    /// two orders coincide.
    pub fn into_delta<N: ReteView + ?Sized>(self, net: &N, store: &WmeStore) -> CsDelta {
        let mut delta = CsDelta::default();
        let mut items: Vec<(u32, Instantiation, i32)> = self
            .net
            .into_iter()
            .map(|((prod, token), d)| (prod, instantiation_of(net, store, prod, &token), d))
            .collect();
        items.sort_by(|a, b| (a.0, &a.1.wmes).cmp(&(b.0, &b.1.wmes)));
        for (prod, inst, d) in items {
            match d {
                1 => delta.added.push(inst),
                -1 => delta.removed.push(inst),
                other => {
                    panic!("conflict-set weight {other} for production {prod} — engine bug")
                }
            }
        }
        delta
    }
}

/// Fold raw P-node emissions into net instantiation adds/removes
/// (buffered-vector compatibility wrapper over [`CsFold`]).
pub fn fold_cs<N: ReteView + ?Sized>(net: &N, store: &WmeStore, raw: Vec<CsChange>) -> CsDelta {
    let mut fold = CsFold::default();
    for c in raw {
        fold.add(c);
    }
    fold.into_delta(net, store)
}

/// Build the [`Instantiation`] for a P-node token.
pub fn instantiation_of<N: ReteView + ?Sized>(
    net: &N,
    store: &WmeStore,
    prod: u32,
    token: &Token,
) -> Instantiation {
    let info = net.prod_info(prod);
    let wmes: Vec<WmeId> = info.pos_slots.iter().map(|&s| token.slot(s)).collect();
    let tags = wmes.iter().map(|&w| store.tag(w)).collect();
    Instantiation { prod: info.production.name, wmes, tags }
}

/// All current instantiations, read back from the P nodes' stored tokens
/// (a quiescent-time debug/verification helper).
pub fn instantiations_from_memories<N: ReteView + ?Sized>(
    net: &N,
    store: &WmeStore,
    mem: &MemoryTable,
) -> Vec<Instantiation> {
    let mut out = Vec::new();
    for i in 0..net.num_prods() as u32 {
        let info = net.prod_info(i);
        for (t, w) in mem.left_tokens_of(info.p_node) {
            for _ in 0..w {
                out.push(instantiation_of(net, store, i, &t));
            }
        }
    }
    out.sort_by(|a, b| (a.prod, &a.wmes).cmp(&(b.prod, &b.wmes)));
    out
}

/// Elapsed ns since `t0`, saturated to the [`TaskRecord::wall_ns`] width
/// (`t0` is `None` when the engine isn't capturing).
fn wall_ns_since(t0: Option<std::time::Instant>) -> u32 {
    t0.map(|t| t.elapsed().as_nanos().min(u32::MAX as u128) as u32).unwrap_or(0)
}

/// Deterministic single-threaded match engine.
pub struct SerialEngine<N = ReteNetwork> {
    /// The compiled network (monolithic, or a session's base + overlay).
    pub net: N,
    /// The mutable half: working memory + hashed token memories.
    pub state: MatchState,
    /// When `true`, every cycle's tasks are recorded into [`Self::trace`].
    pub capture: bool,
    /// Captured traces (when `capture` is set).
    pub trace: RunTrace,
    cycle_count: u64,
    total_tasks: u64,
    /// Reusable beta-scan scratch (the serial engine is its own "worker").
    scratch: BetaScratch,
    /// When `true`, [`Self::drain`] accumulates per-node activation costs
    /// into `node_costs` (one add per beta task) for the online chain
    /// detector. Off by default — armed sessions pay one branch per task.
    profile_costs: bool,
    /// Accumulated per-node costs since the last [`Self::poll_reorg`].
    node_costs: Vec<u64>,
    /// Nodes with a nonzero cost in the current window (pushed on the
    /// 0 → nonzero transition), so a poll touches only the active nodes
    /// instead of walking the whole network's cost vector.
    touched_nodes: Vec<u32>,
}

impl<N> SerialEngine<N> {
    /// New engine over an existing network.
    pub fn new(net: N) -> SerialEngine<N> {
        SerialEngine::with_state(net, MatchState::new())
    }

    /// New engine with an explicit memory-table size (tests use 1 line to
    /// force worst-case collisions).
    pub fn with_memory(net: N, lines: usize) -> SerialEngine<N> {
        SerialEngine::with_state(net, MatchState::with_memory(lines))
    }

    /// New engine adopting an externally owned [`MatchState`] — the serving
    /// layer's constructor (session state outlives engine configuration).
    pub fn with_state(net: N, state: MatchState) -> SerialEngine<N> {
        SerialEngine {
            net,
            state,
            capture: false,
            trace: RunTrace::default(),
            cycle_count: 0,
            total_tasks: 0,
            scratch: BetaScratch::default(),
            profile_costs: false,
            node_costs: Vec::new(),
            touched_nodes: Vec::new(),
        }
    }

    /// Arm or disarm per-node cost accumulation for the chain detector.
    pub fn set_cost_profiling(&mut self, on: bool) {
        self.profile_costs = on;
        if !on {
            self.node_costs.clear();
            self.touched_nodes.clear();
        }
    }

    /// Is cost profiling armed?
    pub fn cost_profiling(&self) -> bool {
        self.profile_costs
    }

    /// The per-node costs accumulated since the last reset (detector food).
    pub fn node_costs(&self) -> &[u64] {
        &self.node_costs
    }

    /// Decompose into network + state (e.g. to freeze the network into a
    /// shared topology after compiling a base production set).
    pub fn into_parts(self) -> (N, MatchState) {
        (self.net, self.state)
    }

    /// Total tasks executed so far (match + update phases).
    pub fn total_tasks(&self) -> u64 {
        self.total_tasks
    }

    /// Cycles run so far.
    pub fn cycles(&self) -> u64 {
        self.cycle_count
    }
}

impl<N: ReteView> SerialEngine<N> {
    /// Add wmes / remove wme ids, then run the match to quiescence.
    ///
    /// This is one "cycle" in the sense of the paper's measurements: all
    /// changes are injected before matching starts (the correction for the
    /// Lisp–C pipe bottleneck described in §6 is the native semantics here).
    pub fn apply_changes(&mut self, adds: Vec<Wme>, removes: Vec<WmeId>) -> CycleOutcome {
        let mut changes: Vec<(WmeId, i32)> = Vec::with_capacity(adds.len() + removes.len());
        for w in adds {
            let (id, _) = self.state.store.add(w);
            changes.push((id, 1));
        }
        for id in removes {
            if self.state.store.remove(id).is_some() {
                changes.push((id, -1));
            }
        }
        self.run_cycle(changes, Phase::Match)
    }

    /// Inject pre-registered wme changes (used by the Soar layer, which
    /// manages the store itself).
    pub fn run_cycle(&mut self, changes: Vec<(WmeId, i32)>, phase: Phase) -> CycleOutcome {
        let mut queue: VecDeque<(Activation, Option<u32>)> = VecDeque::new();
        let mut tasks: Vec<TaskRecord> = Vec::new();
        let mut cs_fold = CsFold::default();
        let mut next_task: u32 = 0;

        for (id, delta) in changes {
            let tid = next_task;
            next_task += 1;
            let mut emitted = 0u32;
            let t0 = self.capture.then(std::time::Instant::now);
            let (alpha, _) =
                process_wme_change(&self.net, &self.state.store, id, delta, 0, &mut |a| {
                    queue.push_back((a, Some(tid)));
                    emitted += 1;
                });
            if self.capture {
                tasks.push(TaskRecord {
                    id: tid,
                    parent: None,
                    node: 0,
                    kind: TaskKind::Alpha,
                    side: None,
                    delta,
                    scanned: alpha.tests_run,
                    hash_rejects: 0,
                    skipped: 0,
                    probes: alpha.probes,
                    emitted,
                    line: None,
                    acquires: 0,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        let executed = self.drain(queue, 0, &mut tasks, &mut cs_fold, &mut next_task);
        let outcome = CycleOutcome {
            cs: cs_fold.into_delta(&self.net, &self.state.store),
            tasks: next_task as u64,
        };
        let _ = executed;
        self.total_tasks += outcome.tasks;
        self.cycle_count += 1;
        if self.capture {
            self.trace.cycles.push(CycleTrace { cycle: self.cycle_count - 1, phase, tasks });
        }
        #[cfg(debug_assertions)]
        self.state.mem.assert_quiescent();
        // Incremental quiescent housekeeping: only the lines this cycle
        // wrote are compacted and counter-reset.
        self.state.mem.end_cycle();
        outcome
    }

    fn drain(
        &mut self,
        mut queue: VecDeque<(Activation, Option<u32>)>,
        min_node: NodeId,
        tasks: &mut Vec<TaskRecord>,
        cs_fold: &mut CsFold,
        next_task: &mut u32,
    ) -> u64 {
        let mut executed = 0u64;
        while let Some((act, parent)) = queue.pop_front() {
            let tid = *next_task;
            *next_task += 1;
            executed += 1;
            let mut pending: Vec<Activation> = Vec::new();
            let t0 = self.capture.then(std::time::Instant::now);
            let stats = process_beta_scratch(
                &self.net,
                &self.state.mem,
                &self.state.store,
                &act,
                min_node,
                &mut self.scratch,
                &mut |a| pending.push(a),
                &mut |c| cs_fold.add(c),
            );
            for a in pending {
                queue.push_back((a, Some(tid)));
            }
            if self.profile_costs {
                let node = act.node as usize;
                if self.node_costs.len() <= node {
                    self.node_costs.resize(node + 1, 0);
                }
                if self.node_costs[node] == 0 {
                    self.touched_nodes.push(act.node);
                }
                self.node_costs[node] += 1 + stats.scanned as u64 + stats.emitted as u64;
            }
            if self.capture {
                let kind = match self.net.node(act.node).kind {
                    NodeKind::Join => TaskKind::Join,
                    NodeKind::Neg => TaskKind::Neg,
                    NodeKind::Prod { .. } => TaskKind::Prod,
                    NodeKind::Root => TaskKind::Join,
                };
                tasks.push(TaskRecord {
                    id: tid,
                    parent,
                    node: act.node,
                    kind,
                    side: Some(act.side),
                    delta: act.delta,
                    scanned: stats.scanned,
                    hash_rejects: stats.hash_rejects,
                    skipped: stats.skipped,
                    probes: 0,
                    emitted: stats.emitted,
                    line: stats.line,
                    acquires: stats.acquires,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        executed
    }

    /// Build the [`Instantiation`] for a P-node token.
    pub fn instantiation_of(&self, prod: u32, token: &Token) -> Instantiation {
        instantiation_of(&self.net, &self.state.store, prod, token)
    }

    /// Current instantiations of every production, read from the P nodes'
    /// stored tokens (test/debug helper; the live conflict set is maintained
    /// incrementally by callers from cycle deltas).
    pub fn current_instantiations(&self) -> Vec<Instantiation> {
        instantiations_from_memories(&self.net, &self.state.store, &self.state.mem)
    }

    /// Feed the accumulated per-node costs to the chain detector and reset
    /// the window. Call at a quiescent boundary.
    pub fn poll_reorg(&mut self, det: &mut ChainDetector) -> Option<ReorgDecision> {
        let window: Vec<(u32, u64)> = self
            .touched_nodes
            .iter()
            .map(|&n| (n, self.node_costs[n as usize]))
            .collect();
        let d = det.observe_sparse(&window, &self.net);
        for &n in &self.touched_nodes {
            self.node_costs[n as usize] = 0;
        }
        self.touched_nodes.clear();
        d
    }
}

impl<N: ReteBuild> SerialEngine<N> {
    /// Compile a production and run the §5.2 state update so it is
    /// "immediately available for use". Returns the new production's
    /// current instantiations.
    pub fn add_production(
        &mut self,
        prod: Arc<psme_ops::Production>,
        org: NetworkOrg,
    ) -> Result<AddOutcome, BuildError> {
        let add = self.net.add_production(prod, org)?;
        let first_new = add.first_new;
        let mut queue: VecDeque<(Activation, Option<u32>)> = VecDeque::new();
        let mut tasks: Vec<TaskRecord> = Vec::new();
        let mut cs_fold = CsFold::default();
        let mut next_task: u32 = 0;

        // Boundary seeds (the specially-executed last shared nodes).
        for a in seed_update(&self.net, &self.state.mem, first_new) {
            queue.push_back((a, None));
        }
        // Alpha re-run of all of WM, filtered to the new nodes.
        let live: Vec<WmeId> = self.state.store.iter_alive().map(|(id, _)| id).collect();
        for id in live {
            let tid = next_task;
            next_task += 1;
            let mut emitted = 0u32;
            let t0 = self.capture.then(std::time::Instant::now);
            let (alpha, _) =
                process_wme_change(&self.net, &self.state.store, id, 1, first_new, &mut |a| {
                    queue.push_back((a, Some(tid)));
                    emitted += 1;
                });
            if self.capture {
                tasks.push(TaskRecord {
                    id: tid,
                    parent: None,
                    node: 0,
                    kind: TaskKind::Alpha,
                    side: None,
                    delta: 1,
                    scanned: alpha.tests_run,
                    hash_rejects: 0,
                    skipped: 0,
                    probes: alpha.probes,
                    emitted,
                    line: None,
                    acquires: 0,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        self.drain(queue, first_new, &mut tasks, &mut cs_fold, &mut next_task);
        let update_tasks = next_task as u64;
        self.total_tasks += update_tasks;
        if self.capture {
            self.trace.cycles.push(CycleTrace { cycle: self.cycle_count, phase: Phase::Update, tasks });
        }
        #[cfg(debug_assertions)]
        self.state.mem.assert_quiescent();
        self.state.mem.end_cycle();
        Ok(AddOutcome { add, update_tasks, cs: cs_fold.into_delta(&self.net, &self.state.store) })
    }

    /// Rebuild an existing production under a new organization at a
    /// quiescent boundary, §5.1-style: compile the new subnetwork beside the
    /// old chain, §5.2-update its memories exactly like a chunk add, then
    /// atomically swap the production over and retire the old chain's
    /// now-unreferenced nodes. On build failure the partial subnetwork is
    /// rolled back and the old chain keeps matching — the error is safe to
    /// ignore.
    ///
    /// Observationally invisible: the new P node ends up storing the same
    /// instantiations the old one did (asserted in debug builds), and no
    /// conflict-set delta is emitted.
    pub fn reorganize_production(
        &mut self,
        prod_idx: u32,
        org: NetworkOrg,
    ) -> Result<ReorgOutcome, BuildError> {
        // Snapshot the old P node's instantiations (old pos_slots are still
        // installed) to pin observational invisibility after the swap.
        #[cfg(debug_assertions)]
        let old_insts: Vec<Instantiation> = {
            let old_p = self.net.prod_info(prod_idx).p_node;
            let mut v: Vec<Instantiation> = self
                .state
                .mem
                .left_tokens_of(old_p)
                .iter()
                .map(|(t, _)| instantiation_of(&self.net, &self.state.store, prod_idx, t))
                .collect();
            v.sort_by(|a, b| a.wmes.cmp(&b.wmes));
            v
        };
        let rb = self.net.reorg_build(prod_idx, org)?;
        let first_new = rb.first_new;
        let p_node = rb.p_node;
        let mut queue: VecDeque<(Activation, Option<u32>)> = VecDeque::new();
        let mut tasks: Vec<TaskRecord> = Vec::new();
        let mut cs_fold = CsFold::default();
        let mut next_task: u32 = 0;

        for a in seed_update(&self.net, &self.state.mem, first_new) {
            queue.push_back((a, None));
        }
        let live: Vec<WmeId> = self.state.store.iter_alive().map(|(id, _)| id).collect();
        for id in live {
            let tid = next_task;
            next_task += 1;
            let mut emitted = 0u32;
            let t0 = self.capture.then(std::time::Instant::now);
            let (alpha, _) =
                process_wme_change(&self.net, &self.state.store, id, 1, first_new, &mut |a| {
                    queue.push_back((a, Some(tid)));
                    emitted += 1;
                });
            if self.capture {
                tasks.push(TaskRecord {
                    id: tid,
                    parent: None,
                    node: 0,
                    kind: TaskKind::Alpha,
                    side: None,
                    delta: 1,
                    scanned: alpha.tests_run,
                    hash_rejects: 0,
                    skipped: 0,
                    probes: alpha.probes,
                    emitted,
                    line: None,
                    acquires: 0,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        self.drain(queue, first_new, &mut tasks, &mut cs_fold, &mut next_task);
        let update_tasks = next_task as u64;
        self.total_tasks += update_tasks;
        if self.capture {
            self.trace.cycles.push(CycleTrace { cycle: self.cycle_count, phase: Phase::Update, tasks });
        }
        // Swap the production over to the new chain, then drop the retired
        // nodes' stored tokens. Order matters: the commit unplugs (or masks)
        // the old chain, so state reads above must already be done.
        let retired = self.net.reorg_commit(rb);
        self.state.mem.purge_nodes(&retired);
        // The update "conflict set" must be exactly the old instantiations,
        // re-derived: nothing appears, nothing vanishes. (into_delta maps
        // tokens through the *new* pos_slots, hence only valid post-commit.)
        #[cfg(debug_assertions)]
        {
            let delta = cs_fold.into_delta(&self.net, &self.state.store);
            assert!(delta.removed.is_empty(), "reorg update removed {:?}", delta.removed);
            let mut added = delta.added;
            added.sort_by(|a, b| a.wmes.cmp(&b.wmes));
            assert_eq!(added, old_insts, "reorg changed production {prod_idx}'s matches");
        }
        #[cfg(debug_assertions)]
        self.state.mem.assert_quiescent();
        self.state.mem.end_cycle();
        Ok(ReorgOutcome {
            prod_idx,
            first_new,
            p_node,
            update_tasks,
            retired: retired.len(),
        })
    }
}

impl<N: ReteView + std::fmt::Debug> std::fmt::Debug for SerialEngine<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SerialEngine({:?}, {} wmes, {} cycles, {} tasks)",
            self.net,
            self.state.store.live_count(),
            self.cycle_count,
            self.total_tasks
        )
    }
}
