//! The serial reference engine.
//!
//! Deterministic single-threaded driver over the shared node semantics of
//! [`crate::process`]. It is the correctness oracle for the parallel engine
//! (identical conflict sets required), the trace producer for the Multimax
//! simulator, and the uniprocessor baseline of the paper's speedup figures.
//!
//! The engine is generic over its network view: `SerialEngine<ReteNetwork>`
//! (the default) owns a monolithic network, while
//! `SerialEngine<SessionNet>` drives a session's chunk overlay over a
//! shared frozen [`crate::session::Topology`]. Either way the mutable match
//! state (working memory + token memories) lives in a [`MatchState`] owned
//! by the engine — the topology/state split the serving layer multiplexes.

use crate::build::{AddResult, BuildError};
use crate::memory::MemoryTable;
use crate::network::{NetworkOrg, ReteNetwork};
use crate::node::{NodeId, NodeKind};
use crate::process::{process_beta_scratch, process_wme_change, Activation, BetaScratch, CsChange};
use crate::state::MatchState;
use crate::token::{Token, WmeStore};
use crate::trace::{CycleTrace, Phase, RunTrace, TaskKind, TaskRecord};
use crate::update::seed_update;
use crate::util::FxHashMap;
use crate::view::{ReteBuild, ReteView};
use psme_ops::{Instantiation, Wme, WmeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// Net conflict-set delta of one cycle.
#[derive(Clone, Debug, Default)]
pub struct CsDelta {
    /// Instantiations that entered the conflict set.
    pub added: Vec<Instantiation>,
    /// Instantiations that left the conflict set.
    pub removed: Vec<Instantiation>,
}

/// Outcome of one match cycle.
#[derive(Clone, Debug, Default)]
pub struct CycleOutcome {
    /// Net conflict-set changes.
    pub cs: CsDelta,
    /// Tasks (node activations, including alpha tasks) executed.
    pub tasks: u64,
}

/// Outcome of a run-time production addition (build + state update).
#[derive(Debug)]
pub struct AddOutcome {
    /// Build result.
    pub add: AddResult,
    /// Tasks executed during the update phase.
    pub update_tasks: u64,
    /// Instantiations of the new production found in current WM.
    pub cs: CsDelta,
}

/// Incrementally folded conflict-set delta: a keyed map updated per
/// P-node emission.
///
/// Weights may flicker during a cycle, so the conflict set is updated from
/// the *net* per-token delta at quiescence, which must be −1, 0 or +1.
/// Folding as emissions arrive (instead of buffering a raw change vector
/// and re-keying the whole thing at the barrier) means entries that cancel
/// within a cycle vanish immediately, the barrier sorts only the net
/// nonzero entries, and the raw vector's token clones are never stored.
#[derive(Clone, Debug, Default)]
pub struct CsFold {
    net: FxHashMap<(u32, Token), i32>,
}

impl CsFold {
    /// Fold one P-node emission in. Entries reaching net zero are removed
    /// on the spot.
    #[inline]
    pub fn add(&mut self, c: CsChange) {
        use std::collections::hash_map::Entry;
        match self.net.entry((c.prod, c.token)) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += c.delta;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                if c.delta != 0 {
                    e.insert(c.delta);
                }
            }
        }
    }

    /// Fold a worker's local map in at the cycle barrier.
    pub fn merge(&mut self, other: CsFold) {
        for ((prod, token), delta) in other.net {
            self.add(CsChange { prod, token, delta });
        }
    }

    /// Net nonzero entries currently held.
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// `true` when every emission cancelled out (or none arrived).
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    /// Resolve into a sorted [`CsDelta`] at quiescence.
    pub fn into_delta<N: ReteView + ?Sized>(self, net: &N, store: &WmeStore) -> CsDelta {
        let mut delta = CsDelta::default();
        let mut items: Vec<((u32, Token), i32)> = self.net.into_iter().collect();
        items.sort_by(|a, b| (a.0 .0, a.0 .1.wmes()).cmp(&(b.0 .0, b.0 .1.wmes())));
        for ((prod, token), d) in items {
            match d {
                1 => delta.added.push(instantiation_of(net, store, prod, &token)),
                -1 => delta.removed.push(instantiation_of(net, store, prod, &token)),
                other => {
                    panic!("conflict-set weight {other} for production {prod} — engine bug")
                }
            }
        }
        delta
    }
}

/// Fold raw P-node emissions into net instantiation adds/removes
/// (buffered-vector compatibility wrapper over [`CsFold`]).
pub fn fold_cs<N: ReteView + ?Sized>(net: &N, store: &WmeStore, raw: Vec<CsChange>) -> CsDelta {
    let mut fold = CsFold::default();
    for c in raw {
        fold.add(c);
    }
    fold.into_delta(net, store)
}

/// Build the [`Instantiation`] for a P-node token.
pub fn instantiation_of<N: ReteView + ?Sized>(
    net: &N,
    store: &WmeStore,
    prod: u32,
    token: &Token,
) -> Instantiation {
    let info = net.prod_info(prod);
    let wmes: Vec<WmeId> = info.pos_slots.iter().map(|&s| token.slot(s)).collect();
    let tags = wmes.iter().map(|&w| store.tag(w)).collect();
    Instantiation { prod: info.production.name, wmes, tags }
}

/// All current instantiations, read back from the P nodes' stored tokens
/// (a quiescent-time debug/verification helper).
pub fn instantiations_from_memories<N: ReteView + ?Sized>(
    net: &N,
    store: &WmeStore,
    mem: &MemoryTable,
) -> Vec<Instantiation> {
    let mut out = Vec::new();
    for i in 0..net.num_prods() as u32 {
        let info = net.prod_info(i);
        for (t, w) in mem.left_tokens_of(info.p_node) {
            for _ in 0..w {
                out.push(instantiation_of(net, store, i, &t));
            }
        }
    }
    out.sort_by(|a, b| (a.prod, &a.wmes).cmp(&(b.prod, &b.wmes)));
    out
}

/// Elapsed ns since `t0`, saturated to the [`TaskRecord::wall_ns`] width
/// (`t0` is `None` when the engine isn't capturing).
fn wall_ns_since(t0: Option<std::time::Instant>) -> u32 {
    t0.map(|t| t.elapsed().as_nanos().min(u32::MAX as u128) as u32).unwrap_or(0)
}

/// Deterministic single-threaded match engine.
pub struct SerialEngine<N = ReteNetwork> {
    /// The compiled network (monolithic, or a session's base + overlay).
    pub net: N,
    /// The mutable half: working memory + hashed token memories.
    pub state: MatchState,
    /// When `true`, every cycle's tasks are recorded into [`Self::trace`].
    pub capture: bool,
    /// Captured traces (when `capture` is set).
    pub trace: RunTrace,
    cycle_count: u64,
    total_tasks: u64,
    /// Reusable beta-scan scratch (the serial engine is its own "worker").
    scratch: BetaScratch,
}

impl<N> SerialEngine<N> {
    /// New engine over an existing network.
    pub fn new(net: N) -> SerialEngine<N> {
        SerialEngine::with_state(net, MatchState::new())
    }

    /// New engine with an explicit memory-table size (tests use 1 line to
    /// force worst-case collisions).
    pub fn with_memory(net: N, lines: usize) -> SerialEngine<N> {
        SerialEngine::with_state(net, MatchState::with_memory(lines))
    }

    /// New engine adopting an externally owned [`MatchState`] — the serving
    /// layer's constructor (session state outlives engine configuration).
    pub fn with_state(net: N, state: MatchState) -> SerialEngine<N> {
        SerialEngine {
            net,
            state,
            capture: false,
            trace: RunTrace::default(),
            cycle_count: 0,
            total_tasks: 0,
            scratch: BetaScratch::default(),
        }
    }

    /// Decompose into network + state (e.g. to freeze the network into a
    /// shared topology after compiling a base production set).
    pub fn into_parts(self) -> (N, MatchState) {
        (self.net, self.state)
    }

    /// Total tasks executed so far (match + update phases).
    pub fn total_tasks(&self) -> u64 {
        self.total_tasks
    }

    /// Cycles run so far.
    pub fn cycles(&self) -> u64 {
        self.cycle_count
    }
}

impl<N: ReteView> SerialEngine<N> {
    /// Add wmes / remove wme ids, then run the match to quiescence.
    ///
    /// This is one "cycle" in the sense of the paper's measurements: all
    /// changes are injected before matching starts (the correction for the
    /// Lisp–C pipe bottleneck described in §6 is the native semantics here).
    pub fn apply_changes(&mut self, adds: Vec<Wme>, removes: Vec<WmeId>) -> CycleOutcome {
        let mut changes: Vec<(WmeId, i32)> = Vec::with_capacity(adds.len() + removes.len());
        for w in adds {
            let (id, _) = self.state.store.add(w);
            changes.push((id, 1));
        }
        for id in removes {
            if self.state.store.remove(id).is_some() {
                changes.push((id, -1));
            }
        }
        self.run_cycle(changes, Phase::Match)
    }

    /// Inject pre-registered wme changes (used by the Soar layer, which
    /// manages the store itself).
    pub fn run_cycle(&mut self, changes: Vec<(WmeId, i32)>, phase: Phase) -> CycleOutcome {
        let mut queue: VecDeque<(Activation, Option<u32>)> = VecDeque::new();
        let mut tasks: Vec<TaskRecord> = Vec::new();
        let mut cs_fold = CsFold::default();
        let mut next_task: u32 = 0;

        for (id, delta) in changes {
            let tid = next_task;
            next_task += 1;
            let mut emitted = 0u32;
            let t0 = self.capture.then(std::time::Instant::now);
            let (alpha, _) =
                process_wme_change(&self.net, &self.state.store, id, delta, 0, &mut |a| {
                    queue.push_back((a, Some(tid)));
                    emitted += 1;
                });
            if self.capture {
                tasks.push(TaskRecord {
                    id: tid,
                    parent: None,
                    node: 0,
                    kind: TaskKind::Alpha,
                    side: None,
                    delta,
                    scanned: alpha.tests_run,
                    hash_rejects: 0,
                    skipped: 0,
                    probes: alpha.probes,
                    emitted,
                    line: None,
                    acquires: 0,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        let executed = self.drain(queue, 0, &mut tasks, &mut cs_fold, &mut next_task);
        let outcome = CycleOutcome {
            cs: cs_fold.into_delta(&self.net, &self.state.store),
            tasks: next_task as u64,
        };
        let _ = executed;
        self.total_tasks += outcome.tasks;
        self.cycle_count += 1;
        if self.capture {
            self.trace.cycles.push(CycleTrace { cycle: self.cycle_count - 1, phase, tasks });
        }
        #[cfg(debug_assertions)]
        self.state.mem.assert_quiescent();
        // Incremental quiescent housekeeping: only the lines this cycle
        // wrote are compacted and counter-reset.
        self.state.mem.end_cycle();
        outcome
    }

    fn drain(
        &mut self,
        mut queue: VecDeque<(Activation, Option<u32>)>,
        min_node: NodeId,
        tasks: &mut Vec<TaskRecord>,
        cs_fold: &mut CsFold,
        next_task: &mut u32,
    ) -> u64 {
        let mut executed = 0u64;
        while let Some((act, parent)) = queue.pop_front() {
            let tid = *next_task;
            *next_task += 1;
            executed += 1;
            let mut pending: Vec<Activation> = Vec::new();
            let t0 = self.capture.then(std::time::Instant::now);
            let stats = process_beta_scratch(
                &self.net,
                &self.state.mem,
                &self.state.store,
                &act,
                min_node,
                &mut self.scratch,
                &mut |a| pending.push(a),
                &mut |c| cs_fold.add(c),
            );
            for a in pending {
                queue.push_back((a, Some(tid)));
            }
            if self.capture {
                let kind = match self.net.node(act.node).kind {
                    NodeKind::Join => TaskKind::Join,
                    NodeKind::Neg => TaskKind::Neg,
                    NodeKind::Prod { .. } => TaskKind::Prod,
                    NodeKind::Root => TaskKind::Join,
                };
                tasks.push(TaskRecord {
                    id: tid,
                    parent,
                    node: act.node,
                    kind,
                    side: Some(act.side),
                    delta: act.delta,
                    scanned: stats.scanned,
                    hash_rejects: stats.hash_rejects,
                    skipped: stats.skipped,
                    probes: 0,
                    emitted: stats.emitted,
                    line: stats.line,
                    acquires: stats.acquires,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        executed
    }

    /// Build the [`Instantiation`] for a P-node token.
    pub fn instantiation_of(&self, prod: u32, token: &Token) -> Instantiation {
        instantiation_of(&self.net, &self.state.store, prod, token)
    }

    /// Current instantiations of every production, read from the P nodes'
    /// stored tokens (test/debug helper; the live conflict set is maintained
    /// incrementally by callers from cycle deltas).
    pub fn current_instantiations(&self) -> Vec<Instantiation> {
        instantiations_from_memories(&self.net, &self.state.store, &self.state.mem)
    }
}

impl<N: ReteBuild> SerialEngine<N> {
    /// Compile a production and run the §5.2 state update so it is
    /// "immediately available for use". Returns the new production's
    /// current instantiations.
    pub fn add_production(
        &mut self,
        prod: Arc<psme_ops::Production>,
        org: NetworkOrg,
    ) -> Result<AddOutcome, BuildError> {
        let add = self.net.add_production(prod, org)?;
        let first_new = add.first_new;
        let mut queue: VecDeque<(Activation, Option<u32>)> = VecDeque::new();
        let mut tasks: Vec<TaskRecord> = Vec::new();
        let mut cs_fold = CsFold::default();
        let mut next_task: u32 = 0;

        // Boundary seeds (the specially-executed last shared nodes).
        for a in seed_update(&self.net, &self.state.mem, first_new) {
            queue.push_back((a, None));
        }
        // Alpha re-run of all of WM, filtered to the new nodes.
        let live: Vec<WmeId> = self.state.store.iter_alive().map(|(id, _)| id).collect();
        for id in live {
            let tid = next_task;
            next_task += 1;
            let mut emitted = 0u32;
            let t0 = self.capture.then(std::time::Instant::now);
            let (alpha, _) =
                process_wme_change(&self.net, &self.state.store, id, 1, first_new, &mut |a| {
                    queue.push_back((a, Some(tid)));
                    emitted += 1;
                });
            if self.capture {
                tasks.push(TaskRecord {
                    id: tid,
                    parent: None,
                    node: 0,
                    kind: TaskKind::Alpha,
                    side: None,
                    delta: 1,
                    scanned: alpha.tests_run,
                    hash_rejects: 0,
                    skipped: 0,
                    probes: alpha.probes,
                    emitted,
                    line: None,
                    acquires: 0,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        self.drain(queue, first_new, &mut tasks, &mut cs_fold, &mut next_task);
        let update_tasks = next_task as u64;
        self.total_tasks += update_tasks;
        if self.capture {
            self.trace.cycles.push(CycleTrace { cycle: self.cycle_count, phase: Phase::Update, tasks });
        }
        #[cfg(debug_assertions)]
        self.state.mem.assert_quiescent();
        self.state.mem.end_cycle();
        Ok(AddOutcome { add, update_tasks, cs: cs_fold.into_delta(&self.net, &self.state.store) })
    }
}

impl<N: ReteView + std::fmt::Debug> std::fmt::Debug for SerialEngine<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SerialEngine({:?}, {} wmes, {} cycles, {} tasks)",
            self.net,
            self.state.store.live_count(),
            self.cycle_count,
            self.total_tasks
        )
    }
}
