//! The serial reference engine.
//!
//! Deterministic single-threaded driver over the shared node semantics of
//! [`crate::process`]. It is the correctness oracle for the parallel engine
//! (identical conflict sets required), the trace producer for the Multimax
//! simulator, and the uniprocessor baseline of the paper's speedup figures.

use crate::build::{AddResult, BuildError};
use crate::memory::MemoryTable;
use crate::network::{NetworkOrg, ReteNetwork};
use crate::node::{NodeId, NodeKind};
use crate::process::{process_beta, process_wme_change, Activation, CsChange};
use crate::token::{Token, WmeStore};
use crate::trace::{CycleTrace, Phase, RunTrace, TaskKind, TaskRecord};
use crate::update::seed_update;
use crate::util::FxHashMap;
use psme_ops::{Instantiation, Wme, WmeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// Net conflict-set delta of one cycle.
#[derive(Clone, Debug, Default)]
pub struct CsDelta {
    /// Instantiations that entered the conflict set.
    pub added: Vec<Instantiation>,
    /// Instantiations that left the conflict set.
    pub removed: Vec<Instantiation>,
}

/// Outcome of one match cycle.
#[derive(Clone, Debug, Default)]
pub struct CycleOutcome {
    /// Net conflict-set changes.
    pub cs: CsDelta,
    /// Tasks (node activations, including alpha tasks) executed.
    pub tasks: u64,
}

/// Outcome of a run-time production addition (build + state update).
#[derive(Debug)]
pub struct AddOutcome {
    /// Build result.
    pub add: AddResult,
    /// Tasks executed during the update phase.
    pub update_tasks: u64,
    /// Instantiations of the new production found in current WM.
    pub cs: CsDelta,
}

/// Fold raw P-node emissions into net instantiation adds/removes.
///
/// Shared by the serial and parallel engines: weights may flicker during a
/// cycle, so the conflict set is updated from the *net* per-token delta at
/// quiescence, which must be −1, 0 or +1.
pub fn fold_cs(net: &ReteNetwork, store: &WmeStore, raw: Vec<CsChange>) -> CsDelta {
    let mut net_delta: FxHashMap<(u32, Token), i32> = FxHashMap::default();
    for c in raw {
        *net_delta.entry((c.prod, c.token)).or_insert(0) += c.delta;
    }
    let mut delta = CsDelta::default();
    let mut items: Vec<((u32, Token), i32)> = net_delta.into_iter().collect();
    items.sort_by(|a, b| (a.0 .0, a.0 .1.wmes()).cmp(&(b.0 .0, b.0 .1.wmes())));
    for ((prod, token), d) in items {
        match d {
            0 => {}
            1 => delta.added.push(instantiation_of(net, store, prod, &token)),
            -1 => delta.removed.push(instantiation_of(net, store, prod, &token)),
            other => panic!("conflict-set weight {other} for production {prod} — engine bug"),
        }
    }
    delta
}

/// Build the [`Instantiation`] for a P-node token.
pub fn instantiation_of(
    net: &ReteNetwork,
    store: &WmeStore,
    prod: u32,
    token: &Token,
) -> Instantiation {
    let info = &net.prods[prod as usize];
    let wmes: Vec<WmeId> = info.pos_slots.iter().map(|&s| token.slot(s)).collect();
    let tags = wmes.iter().map(|&w| store.tag(w)).collect();
    Instantiation { prod: info.production.name, wmes, tags }
}

/// All current instantiations, read back from the P nodes' stored tokens
/// (a quiescent-time debug/verification helper).
pub fn instantiations_from_memories(
    net: &ReteNetwork,
    store: &WmeStore,
    mem: &MemoryTable,
) -> Vec<Instantiation> {
    let mut out = Vec::new();
    for (i, info) in net.prods.iter().enumerate() {
        for t in mem.left_tokens_of(info.p_node) {
            out.push(instantiation_of(net, store, i as u32, &t));
        }
    }
    out.sort_by(|a, b| (a.prod, &a.wmes).cmp(&(b.prod, &b.wmes)));
    out
}

/// Elapsed ns since `t0`, saturated to the [`TaskRecord::wall_ns`] width
/// (`t0` is `None` when the engine isn't capturing).
fn wall_ns_since(t0: Option<std::time::Instant>) -> u32 {
    t0.map(|t| t.elapsed().as_nanos().min(u32::MAX as u128) as u32).unwrap_or(0)
}

/// Deterministic single-threaded match engine.
pub struct SerialEngine {
    /// The compiled network.
    pub net: ReteNetwork,
    /// Hashed token memories.
    pub mem: MemoryTable,
    /// Working-memory store.
    pub store: WmeStore,
    /// When `true`, every cycle's tasks are recorded into [`Self::trace`].
    pub capture: bool,
    /// Captured traces (when `capture` is set).
    pub trace: RunTrace,
    cycle_count: u64,
    total_tasks: u64,
}

impl SerialEngine {
    /// New engine over an existing network.
    pub fn new(net: ReteNetwork) -> SerialEngine {
        SerialEngine::with_memory(net, 4096)
    }

    /// New engine with an explicit memory-table size (tests use 1 line to
    /// force worst-case collisions).
    pub fn with_memory(net: ReteNetwork, lines: usize) -> SerialEngine {
        SerialEngine {
            net,
            mem: MemoryTable::new(lines),
            store: WmeStore::new(),
            capture: false,
            trace: RunTrace::default(),
            cycle_count: 0,
            total_tasks: 0,
        }
    }

    /// Total tasks executed so far (match + update phases).
    pub fn total_tasks(&self) -> u64 {
        self.total_tasks
    }

    /// Cycles run so far.
    pub fn cycles(&self) -> u64 {
        self.cycle_count
    }

    /// Add wmes / remove wme ids, then run the match to quiescence.
    ///
    /// This is one "cycle" in the sense of the paper's measurements: all
    /// changes are injected before matching starts (the correction for the
    /// Lisp–C pipe bottleneck described in §6 is the native semantics here).
    pub fn apply_changes(&mut self, adds: Vec<Wme>, removes: Vec<WmeId>) -> CycleOutcome {
        let mut changes: Vec<(WmeId, i32)> = Vec::with_capacity(adds.len() + removes.len());
        for w in adds {
            let (id, _) = self.store.add(w);
            changes.push((id, 1));
        }
        for id in removes {
            if self.store.remove(id).is_some() {
                changes.push((id, -1));
            }
        }
        self.run_cycle(changes, Phase::Match)
    }

    /// Inject pre-registered wme changes (used by the Soar layer, which
    /// manages the store itself).
    pub fn run_cycle(&mut self, changes: Vec<(WmeId, i32)>, phase: Phase) -> CycleOutcome {
        self.mem.reset_access_counts();
        let mut queue: VecDeque<(Activation, Option<u32>)> = VecDeque::new();
        let mut tasks: Vec<TaskRecord> = Vec::new();
        let mut cs_raw: Vec<CsChange> = Vec::new();
        let mut next_task: u32 = 0;

        for (id, delta) in changes {
            let tid = next_task;
            next_task += 1;
            let mut emitted = 0u32;
            let t0 = self.capture.then(std::time::Instant::now);
            let (alpha, _) =
                process_wme_change(&self.net, &self.store, id, delta, 0, &mut |a| {
                    queue.push_back((a, Some(tid)));
                    emitted += 1;
                });
            if self.capture {
                tasks.push(TaskRecord {
                    id: tid,
                    parent: None,
                    node: 0,
                    kind: TaskKind::Alpha,
                    side: None,
                    delta,
                    scanned: alpha.tests_run,
                    probes: alpha.probes,
                    emitted,
                    line: None,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        let executed = self.drain(queue, 0, &mut tasks, &mut cs_raw, &mut next_task);
        let outcome = CycleOutcome {
            cs: self.fold_cs(cs_raw),
            tasks: next_task as u64,
        };
        let _ = executed;
        self.total_tasks += outcome.tasks;
        self.cycle_count += 1;
        if self.capture {
            self.trace.cycles.push(CycleTrace { cycle: self.cycle_count - 1, phase, tasks });
        }
        #[cfg(debug_assertions)]
        self.mem.assert_quiescent();
        outcome
    }

    fn drain(
        &mut self,
        mut queue: VecDeque<(Activation, Option<u32>)>,
        min_node: NodeId,
        tasks: &mut Vec<TaskRecord>,
        cs_raw: &mut Vec<CsChange>,
        next_task: &mut u32,
    ) -> u64 {
        let mut executed = 0u64;
        while let Some((act, parent)) = queue.pop_front() {
            let tid = *next_task;
            *next_task += 1;
            executed += 1;
            let mut pending: Vec<Activation> = Vec::new();
            let t0 = self.capture.then(std::time::Instant::now);
            let stats = process_beta(
                &self.net,
                &self.mem,
                &self.store,
                &act,
                min_node,
                &mut |a| pending.push(a),
                &mut |c| cs_raw.push(c),
            );
            for a in pending {
                queue.push_back((a, Some(tid)));
            }
            if self.capture {
                let kind = match self.net.node(act.node).kind {
                    NodeKind::Join => TaskKind::Join,
                    NodeKind::Neg => TaskKind::Neg,
                    NodeKind::Prod { .. } => TaskKind::Prod,
                    NodeKind::Root => TaskKind::Join,
                };
                tasks.push(TaskRecord {
                    id: tid,
                    parent,
                    node: act.node,
                    kind,
                    side: Some(act.side),
                    delta: act.delta,
                    scanned: stats.scanned,
                    probes: 0,
                    emitted: stats.emitted,
                    line: stats.line,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        executed
    }

    /// Fold raw P-node emissions into net instantiation add/removes.
    fn fold_cs(&self, raw: Vec<CsChange>) -> CsDelta {
        fold_cs(&self.net, &self.store, raw)
    }

    /// Build the [`Instantiation`] for a P-node token.
    pub fn instantiation_of(&self, prod: u32, token: &Token) -> Instantiation {
        instantiation_of(&self.net, &self.store, prod, token)
    }

    /// Compile a production and run the §5.2 state update so it is
    /// "immediately available for use". Returns the new production's
    /// current instantiations.
    pub fn add_production(
        &mut self,
        prod: Arc<psme_ops::Production>,
        org: NetworkOrg,
    ) -> Result<AddOutcome, BuildError> {
        let add = self.net.add_production(prod, org)?;
        let first_new = add.first_new;
        let mut queue: VecDeque<(Activation, Option<u32>)> = VecDeque::new();
        let mut tasks: Vec<TaskRecord> = Vec::new();
        let mut cs_raw: Vec<CsChange> = Vec::new();
        let mut next_task: u32 = 0;

        // Boundary seeds (the specially-executed last shared nodes).
        for a in seed_update(&self.net, &self.mem, first_new) {
            queue.push_back((a, None));
        }
        // Alpha re-run of all of WM, filtered to the new nodes.
        let live: Vec<WmeId> = self.store.iter_alive().map(|(id, _)| id).collect();
        for id in live {
            let tid = next_task;
            next_task += 1;
            let mut emitted = 0u32;
            let t0 = self.capture.then(std::time::Instant::now);
            let (alpha, _) =
                process_wme_change(&self.net, &self.store, id, 1, first_new, &mut |a| {
                    queue.push_back((a, Some(tid)));
                    emitted += 1;
                });
            if self.capture {
                tasks.push(TaskRecord {
                    id: tid,
                    parent: None,
                    node: 0,
                    kind: TaskKind::Alpha,
                    side: None,
                    delta: 1,
                    scanned: alpha.tests_run,
                    probes: alpha.probes,
                    emitted,
                    line: None,
                    wall_ns: wall_ns_since(t0),
                });
            }
        }
        self.drain(queue, first_new, &mut tasks, &mut cs_raw, &mut next_task);
        let update_tasks = next_task as u64;
        self.total_tasks += update_tasks;
        if self.capture {
            self.trace.cycles.push(CycleTrace { cycle: self.cycle_count, phase: Phase::Update, tasks });
        }
        #[cfg(debug_assertions)]
        self.mem.assert_quiescent();
        Ok(AddOutcome { add, update_tasks, cs: self.fold_cs(cs_raw) })
    }

    /// Current instantiations of every production, read from the P nodes'
    /// stored tokens (test/debug helper; the live conflict set is maintained
    /// incrementally by callers from cycle deltas).
    pub fn current_instantiations(&self) -> Vec<Instantiation> {
        instantiations_from_memories(&self.net, &self.store, &self.mem)
    }
}

impl std::fmt::Debug for SerialEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SerialEngine({:?}, {} wmes, {} cycles, {} tasks)",
            self.net,
            self.store.live_count(),
            self.cycle_count,
            self.total_tasks
        )
    }
}
