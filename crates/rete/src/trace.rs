//! Task traces — the raw material for the Encore Multimax simulator.
//!
//! The serial engine deterministically records every task (node activation)
//! it executes: its parent task (the activation that enqueued it), the node,
//! the side, and the work counters (opposite-memory entries scanned,
//! children emitted, constant tests run). `psme-sim` replays these DAGs on
//! P simulated processors under a calibrated NS32032 cost model to
//! regenerate the paper's speedup figures.

use crate::node::{NodeId, Side};

/// What kind of work a task performed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskKind {
    /// A wme change pushed through the constant-test network.
    Alpha,
    /// An and-node activation.
    Join,
    /// A not-node activation (including conjunctive negations).
    Neg,
    /// A P-node activation (conflict-set update).
    Prod,
}

/// One executed task.
#[derive(Clone, Copy, Debug)]
pub struct TaskRecord {
    /// Task id, unique within its cycle (dense from 0).
    pub id: u32,
    /// The task whose processing enqueued this one (`None` for the cycle's
    /// seed tasks, which are available the moment the cycle starts).
    pub parent: Option<u32>,
    /// Destination node (0 for alpha tasks).
    pub node: NodeId,
    /// Work kind.
    pub kind: TaskKind,
    /// Arrival side (`None` for alpha tasks).
    pub side: Option<Side>,
    /// +1 add / −1 delete.
    pub delta: i32,
    /// Opposite-memory candidate entries examined (alpha: constant tests
    /// run). Candidates only — co-hashed entries of other nodes are counted
    /// in `skipped`, so indexed and reference memory runs agree on this
    /// column.
    pub scanned: u32,
    /// Candidates rejected by the stored-hash compare before any structural
    /// key compare (indexed probes only; 0 for alpha tasks and for the
    /// reference whole-line scan).
    pub hash_rejects: u32,
    /// Co-hashed entries of *other* destination nodes traversed by the
    /// reference whole-line scan (0 with the per-node line index, which
    /// never visits them; 0 for alpha tasks).
    pub skipped: u32,
    /// For alpha tasks: hashed jump-table probes included in `scanned`
    /// (cheaper than chain tests under the cost model; 0 for beta tasks and
    /// for the linear-scan classifier).
    pub probes: u32,
    /// Child activations emitted.
    pub emitted: u32,
    /// Memory line touched, if any.
    pub line: Option<u32>,
    /// Line-lock acquisitions this task paid for: 1 for a standalone beta
    /// task, 1 for the first task of a batched same-line drain, 0 for the
    /// rest of the batch, 0 for alpha tasks (no memory line).
    pub acquires: u32,
    /// Measured wall time of the task in nanoseconds (0 when the engine
    /// wasn't capturing timings; u32 caps one task at ~4.3 s, far beyond
    /// any real activation).
    pub wall_ns: u32,
}

impl TaskRecord {
    /// A null activation in the paper's sense: a two-input node activation
    /// that emitted no children — memory was updated and scanned, but no
    /// new match progress resulted. Gupta measured these as a dominant
    /// overhead; alpha and P-node tasks are excluded by definition.
    pub fn is_null(&self) -> bool {
        matches!(self.kind, TaskKind::Join | TaskKind::Neg) && self.emitted == 0
    }
}

/// Which phase of a run a cycle belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Normal matching (an elaboration cycle / OPS5 recognize cycle).
    Match,
    /// The §5.2 state update after a run-time production addition.
    Update,
}

/// The trace of one cycle.
#[derive(Clone, Debug)]
pub struct CycleTrace {
    /// Cycle ordinal within the run.
    pub cycle: u64,
    /// Match or update phase.
    pub phase: Phase,
    /// Executed tasks in execution order.
    pub tasks: Vec<TaskRecord>,
}

impl CycleTrace {
    /// Number of tasks in the cycle.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the cycle ran no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of two-input + P node tasks (excludes alpha tasks).
    pub fn beta_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| t.kind != TaskKind::Alpha).count()
    }
}

/// A full run's traces.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// Per-cycle traces in order.
    pub cycles: Vec<CycleTrace>,
}

impl RunTrace {
    /// Total tasks across all cycles.
    pub fn total_tasks(&self) -> u64 {
        self.cycles.iter().map(|c| c.tasks.len() as u64).sum()
    }

    /// Cycles in the given phase.
    pub fn phase_cycles(&self, phase: Phase) -> impl Iterator<Item = &CycleTrace> {
        self.cycles.iter().filter(move |c| c.phase == phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, parent: Option<u32>, kind: TaskKind) -> TaskRecord {
        TaskRecord { id, parent, node: 1, kind, side: None, delta: 1, scanned: 0, hash_rejects: 0, skipped: 0, probes: 0, emitted: 0, line: None, acquires: 0, wall_ns: 0 }
    }

    #[test]
    fn null_activation_is_childless_two_input() {
        let mut t = rec(0, None, TaskKind::Join);
        assert!(t.is_null());
        t.emitted = 1;
        assert!(!t.is_null());
        assert!(rec(1, None, TaskKind::Neg).is_null());
        // Alpha and P-node tasks are never "null activations".
        assert!(!rec(2, None, TaskKind::Alpha).is_null());
        assert!(!rec(3, None, TaskKind::Prod).is_null());
    }

    #[test]
    fn counting_helpers() {
        let c = CycleTrace {
            cycle: 0,
            phase: Phase::Match,
            tasks: vec![
                rec(0, None, TaskKind::Alpha),
                rec(1, Some(0), TaskKind::Join),
                rec(2, Some(1), TaskKind::Prod),
            ],
        };
        assert_eq!(c.len(), 3);
        assert_eq!(c.beta_tasks(), 2);
        let r = RunTrace { cycles: vec![c.clone(), CycleTrace { cycle: 1, phase: Phase::Update, tasks: vec![] }] };
        assert_eq!(r.total_tasks(), 3);
        assert_eq!(r.phase_cycles(Phase::Update).count(), 1);
        assert!(r.cycles[1].is_empty());
    }
}
