//! Tokens and the working-memory store.
//!
//! A token carries a *partial instantiation* — "a list of wmes, matching
//! CEs" (§2.2). We represent it as an immutable, `Arc`-shared vector of wme
//! ids; the *meaning* of each slot (which condition it matches) is given by
//! the consuming node's coverage metadata, so the same representation serves
//! linear chains, bilinear group joins and NCC subnetworks.

use crate::util::{fxhash, FxHashMap};
use psme_ops::{TimeTag, Value, Wme, WmeId};
use std::fmt;
use std::sync::Arc;

/// An immutable partial instantiation: wme ids, one per covered condition.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Token {
    wmes: Arc<[WmeId]>,
}

impl Token {
    /// The empty token (the left input of first-level joins).
    pub fn empty() -> Token {
        Token { wmes: Arc::from([]) }
    }

    /// A one-slot token wrapping a single wme (alpha-network output).
    pub fn unit(w: WmeId) -> Token {
        Token { wmes: Arc::from([w]) }
    }

    /// Build from a slice of wme ids.
    pub fn from_slice(ws: &[WmeId]) -> Token {
        Token { wmes: Arc::from(ws) }
    }

    /// Build directly from an iterator of wme ids. With an exact-size
    /// iterator the `Arc<[_]>` is filled in a single allocation — no
    /// intermediate `Vec` (the hot path of every join activation).
    pub fn collect(ws: impl Iterator<Item = WmeId>) -> Token {
        Token { wmes: ws.collect() }
    }

    /// Wme id at `slot`.
    #[inline]
    pub fn slot(&self, i: u16) -> WmeId {
        self.wmes[i as usize]
    }

    /// All wme ids.
    pub fn wmes(&self) -> &[WmeId] {
        &self.wmes
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.wmes.len()
    }

    /// `true` for the empty token.
    pub fn is_empty(&self) -> bool {
        self.wmes.is_empty()
    }
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T[")?;
        for (i, w) in self.wmes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", w.0)?;
        }
        write!(f, "]")
    }
}

/// One stored wme with its time tag and liveness.
#[derive(Clone, Debug)]
struct StoredWme {
    wme: Arc<Wme>,
    tag: TimeTag,
    alive: bool,
    /// The wme's one-slot token, built once at add time. Tokens are
    /// immutable, so the alpha fan-out and every subsequent alpha task for
    /// this wme share it by refcount instead of allocating fresh `Arc`s.
    unit: Token,
}

/// The working-memory store: assigns [`WmeId`]s and [`TimeTag`]s, keeps the
/// wme values readable for the matcher (ids are never reused, and removed
/// wmes stay readable because in-flight delete tokens still reference them).
#[derive(Default, Debug)]
pub struct WmeStore {
    wmes: Vec<StoredWme>,
    next_tag: u64,
    live: usize,
    /// Content-hash index over *live* wmes: bucket of candidate ids in
    /// ascending-id order (insertion order; removal is order-preserving).
    /// Makes [`Self::find_alive`] — the RHS `make` dedup path — O(bucket)
    /// instead of O(live).
    alive_idx: FxHashMap<u64, Vec<WmeId>>,
}

impl WmeStore {
    /// Empty store.
    pub fn new() -> WmeStore {
        WmeStore::default()
    }

    /// Add a wme, assigning the next id and time tag.
    pub fn add(&mut self, wme: Wme) -> (WmeId, TimeTag) {
        self.next_tag += 1;
        let id = WmeId(self.wmes.len() as u32);
        let tag = TimeTag(self.next_tag);
        self.alive_idx.entry(fxhash(&wme)).or_default().push(id);
        self.wmes.push(StoredWme { wme: Arc::new(wme), tag, alive: true, unit: Token::unit(id) });
        self.live += 1;
        (id, tag)
    }

    /// Mark a wme dead. Returns its contents if it was alive.
    pub fn remove(&mut self, id: WmeId) -> Option<Arc<Wme>> {
        let s = self.wmes.get_mut(id.0 as usize)?;
        if !s.alive {
            return None;
        }
        s.alive = false;
        self.live -= 1;
        let wme = s.wme.clone();
        let h = fxhash(wme.as_ref());
        if let Some(bucket) = self.alive_idx.get_mut(&h) {
            if let Some(pos) = bucket.iter().position(|&b| b == id) {
                bucket.remove(pos);
            }
            if bucket.is_empty() {
                self.alive_idx.remove(&h);
            }
        }
        Some(wme)
    }

    /// The wme for an id (alive or dead).
    pub fn get(&self, id: WmeId) -> &Arc<Wme> {
        &self.wmes[id.0 as usize].wme
    }

    /// Field value of a wme.
    #[inline]
    pub fn value(&self, id: WmeId, field: u16) -> Value {
        self.wmes[id.0 as usize].wme.field(field)
    }

    /// Time tag of a wme.
    pub fn tag(&self, id: WmeId) -> TimeTag {
        self.wmes[id.0 as usize].tag
    }

    /// The wme's shared one-slot token (cloning is a refcount bump).
    #[inline]
    pub fn unit_token(&self, id: WmeId) -> &Token {
        &self.wmes[id.0 as usize].unit
    }

    /// Is the wme currently in working memory?
    pub fn is_alive(&self, id: WmeId) -> bool {
        self.wmes.get(id.0 as usize).map(|s| s.alive).unwrap_or(false)
    }

    /// Iterate over live wmes.
    pub fn iter_alive(&self) -> impl Iterator<Item = (WmeId, &Arc<Wme>)> {
        self.wmes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, s)| (WmeId(i as u32), &s.wme))
    }

    /// Find the first (lowest-id) live wme structurally equal to `w`.
    ///
    /// Probes the content-hash index and verifies structurally (hash
    /// collisions land in the same bucket but fail the `==`); the bucket's
    /// ascending-id order preserves the old linear scan's "first match"
    /// answer.
    pub fn find_alive(&self, w: &Wme) -> Option<WmeId> {
        self.alive_idx.get(&fxhash(w)).and_then(|bucket| {
            bucket.iter().copied().find(|&id| {
                let s = &self.wmes[id.0 as usize];
                debug_assert!(s.alive, "index holds a dead wme");
                s.wme.as_ref() == w
            })
        })
    }

    /// Number of live wmes.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total wmes ever added.
    pub fn total_count(&self) -> usize {
        self.wmes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_ops::ClassRegistry;

    fn mk(reg: &ClassRegistry, s: &str) -> Wme {
        psme_ops::parse_wme(s, reg).unwrap()
    }

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("a", &["x", "y"]);
        r
    }

    #[test]
    fn tokens_compare_structurally() {
        let t1 = Token::from_slice(&[WmeId(1), WmeId(2)]);
        let t2 = Token::from_slice(&[WmeId(1), WmeId(2)]);
        let t3 = Token::from_slice(&[WmeId(2), WmeId(1)]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(t1.slot(1), WmeId(2));
        assert!(Token::empty().is_empty());
        assert_eq!(Token::unit(WmeId(7)).len(), 1);
    }

    #[test]
    fn store_lifecycle() {
        let r = reg();
        let mut s = WmeStore::new();
        let (id1, tag1) = s.add(mk(&r, "(a ^x 1)"));
        let (id2, tag2) = s.add(mk(&r, "(a ^x 2)"));
        assert!(tag2 > tag1);
        assert_eq!(s.live_count(), 2);
        assert!(s.is_alive(id1));
        assert_eq!(s.value(id2, 0), Value::Int(2));
        let w = s.remove(id1).unwrap();
        assert_eq!(w.field(0), Value::Int(1));
        assert!(!s.is_alive(id1));
        assert_eq!(s.live_count(), 1);
        // dead wmes stay readable
        assert_eq!(s.value(id1, 0), Value::Int(1));
        // double-remove is None
        assert!(s.remove(id1).is_none());
    }

    #[test]
    fn find_alive_matches_structurally() {
        let r = reg();
        let mut s = WmeStore::new();
        let (id, _) = s.add(mk(&r, "(a ^x 1 ^y blue)"));
        assert_eq!(s.find_alive(&mk(&r, "(a ^x 1 ^y blue)")), Some(id));
        assert_eq!(s.find_alive(&mk(&r, "(a ^x 1)")), None);
        s.remove(id);
        assert_eq!(s.find_alive(&mk(&r, "(a ^x 1 ^y blue)")), None);
    }

    #[test]
    fn find_alive_index_survives_removal() {
        // Regression: the content-hash index must stay consistent with the
        // store across add/remove, including duplicates of equal content.
        let r = reg();
        let mut s = WmeStore::new();
        let (id1, _) = s.add(mk(&r, "(a ^x 1 ^y blue)"));
        let (id2, _) = s.add(mk(&r, "(a ^x 1 ^y blue)"));
        let (id3, _) = s.add(mk(&r, "(a ^x 2)"));
        // Duplicates: the lowest live id wins (the old linear scan's answer).
        assert_eq!(s.find_alive(&mk(&r, "(a ^x 1 ^y blue)")), Some(id1));
        s.remove(id1);
        assert_eq!(s.find_alive(&mk(&r, "(a ^x 1 ^y blue)")), Some(id2));
        s.remove(id2);
        assert_eq!(s.find_alive(&mk(&r, "(a ^x 1 ^y blue)")), None);
        assert_eq!(s.find_alive(&mk(&r, "(a ^x 2)")), Some(id3));
        // Re-adding equal content after full removal finds the new id.
        let (id4, _) = s.add(mk(&r, "(a ^x 1 ^y blue)"));
        assert_eq!(s.find_alive(&mk(&r, "(a ^x 1 ^y blue)")), Some(id4));
        // Double-remove must not corrupt the bucket of a re-added twin.
        assert!(s.remove(id1).is_none());
        assert_eq!(s.find_alive(&mk(&r, "(a ^x 1 ^y blue)")), Some(id4));
        // Every live wme is findable; every dead one is not.
        for (id, w) in s.iter_alive() {
            assert_eq!(s.find_alive(w), Some(id));
        }
    }

    #[test]
    fn find_alive_agrees_with_linear_scan() {
        // Differential check against the pre-index reference definition.
        let r = reg();
        let mut s = WmeStore::new();
        let mut all = Vec::new();
        for i in 0..20 {
            let (id, _) = s.add(mk(&r, &format!("(a ^x {} ^y blue)", i % 7)));
            all.push(id);
        }
        for &id in all.iter().step_by(3) {
            s.remove(id);
        }
        for i in 0..8 {
            let probe = mk(&r, &format!("(a ^x {i} ^y blue)"));
            let reference = s.iter_alive().find(|(_, w)| w.as_ref() == &probe).map(|(id, _)| id);
            assert_eq!(s.find_alive(&probe), reference, "probe x={i}");
        }
    }

    #[test]
    fn iter_alive_skips_dead() {
        let r = reg();
        let mut s = WmeStore::new();
        let (id1, _) = s.add(mk(&r, "(a ^x 1)"));
        let (_id2, _) = s.add(mk(&r, "(a ^x 2)"));
        s.remove(id1);
        let alive: Vec<_> = s.iter_alive().map(|(id, _)| id).collect();
        assert_eq!(alive, vec![WmeId(1)]);
    }
}
