//! The constant-test (alpha) network.
//!
//! "The top of the network is composed only of [constant test nodes] and
//! forms a network that discriminates wmes based on the constants they
//! contain" (§2.2). An *alpha memory* here is a canonical set of constant
//! tests plus intra-element variable tests; equal test sets are shared
//! between productions. Per the PSM-E design, alpha memories do not store
//! wmes — matching wmes are stored per consuming two-input node in the
//! hashed right memories — so an alpha memory is purely a discrimination
//! point with a successor list.

use crate::node::{NodeId, Side};
use crate::util::FxHashMap;
use psme_ops::{Pred, Symbol, Value, Wme};

/// Index of an alpha memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AlphaMemId(pub u32);

/// A constant test: `wme.field PRED value`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AlphaTest {
    /// Field index.
    pub field: u16,
    /// Predicate (ordered for canonicalization).
    pub pred: PredOrd,
    /// Constant operand.
    pub value: Value,
}

/// An intra-element variable test: `wme.field_a PRED wme.field_b`
/// (compiled from a variable occurring twice within one CE).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct IntraTest {
    /// Tested field.
    pub field_a: u16,
    /// Predicate.
    pub pred: PredOrd,
    /// Field holding the binding occurrence.
    pub field_b: u16,
}

/// `Pred` wrapper with a total order (for canonical sorting).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PredOrd(pub Pred);

impl PartialOrd for PredOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PredOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0 as u8).cmp(&(other.0 as u8))
    }
}

/// One alpha memory: class + canonical tests + successor edges.
#[derive(Clone, Debug)]
pub struct AlphaMem {
    /// This memory's id.
    pub id: AlphaMemId,
    /// Required wme class.
    pub class: Symbol,
    /// Constant tests (sorted).
    pub tests: Vec<AlphaTest>,
    /// Intra-element tests (sorted).
    pub intra: Vec<IntraTest>,
    /// Two-input nodes fed by this memory (side is always `Right`).
    pub successors: Vec<(NodeId, Side)>,
}

impl AlphaMem {
    /// Does a wme of the right class pass all tests?
    pub fn passes(&self, w: &Wme) -> bool {
        self.tests.iter().all(|t| t.pred.0.eval(w.field(t.field), t.value))
            && self.intra.iter().all(|t| t.pred.0.eval(w.field(t.field_a), w.field(t.field_b)))
    }

    /// Number of individual tests (for cost accounting).
    pub fn test_count(&self) -> usize {
        self.tests.len() + self.intra.len()
    }
}

type AlphaKey = (Symbol, Vec<AlphaTest>, Vec<IntraTest>);

/// The alpha network: all alpha memories, indexed by class.
#[derive(Default, Debug)]
pub struct AlphaNet {
    mems: Vec<AlphaMem>,
    by_class: FxHashMap<Symbol, Vec<AlphaMemId>>,
    interned: FxHashMap<AlphaKey, AlphaMemId>,
}

/// Result of pushing one wme through the discrimination network.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AlphaStats {
    /// Constant/intra tests evaluated.
    pub tests_run: u32,
    /// Alpha memories the wme entered.
    pub mems_matched: u32,
}

impl AlphaNet {
    /// Empty network.
    pub fn new() -> AlphaNet {
        AlphaNet::default()
    }

    /// Get-or-create the alpha memory for a canonical test set. Returns the
    /// id and whether it already existed (was shared).
    pub fn intern(
        &mut self,
        class: Symbol,
        mut tests: Vec<AlphaTest>,
        mut intra: Vec<IntraTest>,
    ) -> (AlphaMemId, bool) {
        tests.sort_unstable();
        tests.dedup();
        intra.sort_unstable();
        intra.dedup();
        let key = (class, tests, intra);
        if let Some(&id) = self.interned.get(&key) {
            return (id, true);
        }
        let id = AlphaMemId(self.mems.len() as u32);
        self.mems.push(AlphaMem {
            id,
            class,
            tests: key.1.clone(),
            intra: key.2.clone(),
            successors: Vec::new(),
        });
        self.by_class.entry(class).or_default().push(id);
        self.interned.insert(key, id);
        (id, false)
    }

    /// Register a successor two-input node on an alpha memory.
    pub fn add_successor(&mut self, mem: AlphaMemId, node: NodeId) {
        self.mems[mem.0 as usize].successors.push((node, Side::Right));
    }

    /// Access an alpha memory.
    pub fn get(&self, id: AlphaMemId) -> &AlphaMem {
        &self.mems[id.0 as usize]
    }

    /// All memories.
    pub fn mems(&self) -> &[AlphaMem] {
        &self.mems
    }

    /// Mutable access for network surgery (rollback of failed additions).
    pub(crate) fn mems_mut(&mut self) -> &mut [AlphaMem] {
        &mut self.mems
    }

    /// Push a wme through the discrimination net, calling `hit` for each
    /// matching alpha memory. Returns test/match counts for cost models.
    pub fn classify(&self, w: &Wme, mut hit: impl FnMut(&AlphaMem)) -> AlphaStats {
        let mut stats = AlphaStats::default();
        // The class test itself is the first discrimination (hash lookup,
        // counted as one test — PSM-E's class-indexing optimization that
        // "reduces constant-test activations by almost half").
        stats.tests_run += 1;
        if let Some(ids) = self.by_class.get(&w.class) {
            for &id in ids {
                let m = &self.mems[id.0 as usize];
                stats.tests_run += m.test_count() as u32;
                if m.passes(w) {
                    stats.mems_matched += 1;
                    hit(m);
                }
            }
        }
        stats
    }

    /// Number of alpha memories.
    pub fn len(&self) -> usize {
        self.mems.len()
    }

    /// `true` when no memory exists.
    pub fn is_empty(&self) -> bool {
        self.mems.is_empty()
    }

    /// Count of distinct constant-test nodes under maximal sharing (each
    /// distinct `(class, field, pred, value)` is one shared node) — used by
    /// the code-size model.
    pub fn distinct_const_tests(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for m in &self.mems {
            for t in &m.tests {
                set.insert((m.class, *t));
            }
            for t in &m.intra {
                set.insert((m.class, AlphaTest { field: t.field_a, pred: t.pred, value: Value::Int(t.field_b as i64) }));
            }
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_ops::{intern, ClassRegistry};

    fn w(reg: &ClassRegistry, s: &str) -> Wme {
        psme_ops::parse_wme(s, reg).unwrap()
    }

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("block", &["name", "color", "on"]);
        r.declare_str("hand", &["state"]);
        r
    }

    fn t(field: u16, pred: Pred, value: Value) -> AlphaTest {
        AlphaTest { field, pred: PredOrd(pred), value }
    }

    #[test]
    fn intern_shares_equal_test_sets() {
        let mut a = AlphaNet::new();
        let (id1, shared1) = a.intern(
            intern("block"),
            vec![t(1, Pred::Eq, Value::sym("blue")), t(0, Pred::Eq, Value::sym("b1"))],
            vec![],
        );
        // Same tests in different order intern to the same memory.
        let (id2, shared2) = a.intern(
            intern("block"),
            vec![t(0, Pred::Eq, Value::sym("b1")), t(1, Pred::Eq, Value::sym("blue"))],
            vec![],
        );
        assert!(!shared1);
        assert!(shared2);
        assert_eq!(id1, id2);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn classify_filters_by_class_and_tests() {
        let r = reg();
        let mut a = AlphaNet::new();
        let (blue, _) = a.intern(intern("block"), vec![t(1, Pred::Eq, Value::sym("blue"))], vec![]);
        let (anyblock, _) = a.intern(intern("block"), vec![], vec![]);
        let (_hand, _) = a.intern(intern("hand"), vec![], vec![]);

        let mut hits = Vec::new();
        let stats = a.classify(&w(&r, "(block ^name b1 ^color blue)"), |m| hits.push(m.id));
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&blue) && hits.contains(&anyblock));
        assert!(stats.tests_run >= 2);

        hits.clear();
        a.classify(&w(&r, "(block ^name b2 ^color red)"), |m| hits.push(m.id));
        assert_eq!(hits, vec![anyblock]);

        hits.clear();
        a.classify(&w(&r, "(hand ^state free)"), |m| hits.push(m.id));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn intra_tests_compare_fields() {
        let r = reg();
        let mut a = AlphaNet::new();
        // (block ^name <x> ^on <x>) — name field equals on field
        let (id, _) = a.intern(
            intern("block"),
            vec![],
            vec![IntraTest { field_a: 2, pred: PredOrd(Pred::Eq), field_b: 0 }],
        );
        let mut hits = Vec::new();
        a.classify(&w(&r, "(block ^name b1 ^on b1)"), |m| hits.push(m.id));
        assert_eq!(hits, vec![id]);
        hits.clear();
        a.classify(&w(&r, "(block ^name b1 ^on b2)"), |m| hits.push(m.id));
        assert!(hits.is_empty());
    }

    #[test]
    fn relational_const_tests() {
        let mut r = ClassRegistry::new();
        r.declare_str("count", &["n"]);
        let mut a = AlphaNet::new();
        let (id, _) = a.intern(intern("count"), vec![t(0, Pred::Gt, Value::Int(5))], vec![]);
        let mut hits = Vec::new();
        a.classify(&w(&r, "(count ^n 9)"), |m| hits.push(m.id));
        assert_eq!(hits, vec![id]);
        hits.clear();
        a.classify(&w(&r, "(count ^n 5)"), |m| hits.push(m.id));
        assert!(hits.is_empty());
    }

    #[test]
    fn successors_accumulate() {
        let mut a = AlphaNet::new();
        let (id, _) = a.intern(intern("block"), vec![], vec![]);
        a.add_successor(id, 3);
        a.add_successor(id, 7);
        assert_eq!(a.get(id).successors, vec![(3, Side::Right), (7, Side::Right)]);
    }
}
