//! The constant-test (alpha) network.
//!
//! "The top of the network is composed only of [constant test nodes] and
//! forms a network that discriminates wmes based on the constants they
//! contain" (§2.2). An *alpha memory* here is a canonical set of constant
//! tests plus intra-element variable tests; equal test sets are shared
//! between productions. Per the PSM-E design, alpha memories do not store
//! wmes — matching wmes are stored per consuming two-input node in the
//! hashed right memories — so an alpha memory is purely a discrimination
//! point with a successor list.
//!
//! # Hash discrimination (the §5.1 jumptable, generalized)
//!
//! Discrimination is two-level. Level one is the class hash (PSM-E's
//! class-indexing optimization that "reduces constant-test activations by
//! almost half"). Level two is a per-class `(field, value)` **jump table**:
//! every memory with at least one equality constant test is registered
//! under exactly one such test — its *discriminator* — and a wme reaches it
//! only through the hash bucket for `(field, wme.field)`. One probe per
//! indexed field replaces a linear scan over every memory of the class,
//! which is what keeps constant-test cost flat as chunks pile memories onto
//! the network at run time.
//!
//! The remaining tests of each candidate (non-equality predicates, the
//! equality tests beyond the discriminator, and intra-element tests) are
//! *residual* tests. Residuals are interned into a per-class canonical pool
//! so that a test shared by many memories — e.g. the `≠ nil`
//! attribute-present test every variable field compiles to — is evaluated
//! **once per wme**, not once per memory; candidates then read the memoized
//! verdict. Memories with no equality test at all sit on an always-scanned
//! fallthrough list but still share residual evaluations.
//!
//! The index is spliced incrementally by [`AlphaNet::intern`], so run-time
//! chunk addition keeps it consistent without a rebuild, and a rolled-back
//! addition (which leaves its interned memories in place, successor-less)
//! leaves it consistent too — [`AlphaNet::validate_index`] checks the
//! invariants and the differential proptests pin indexed ≡ linear. The old
//! per-class linear scan survives as [`AlphaNet::classify_linear`], the
//! differential oracle and the baseline of the `alpha_discrimination`
//! bench.

use crate::node::{NodeId, Side};
use crate::util::FxHashMap;
use psme_ops::{Pred, Symbol, Value, Wme};
use std::cell::RefCell;
use std::sync::Arc;

/// Index of an alpha memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AlphaMemId(pub u32);

/// A constant test: `wme.field PRED value`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AlphaTest {
    /// Field index.
    pub field: u16,
    /// Predicate (ordered for canonicalization).
    pub pred: PredOrd,
    /// Constant operand.
    pub value: Value,
}

/// An intra-element variable test: `wme.field_a PRED wme.field_b`
/// (compiled from a variable occurring twice within one CE).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct IntraTest {
    /// Tested field.
    pub field_a: u16,
    /// Predicate.
    pub pred: PredOrd,
    /// Field holding the binding occurrence.
    pub field_b: u16,
}

/// `Pred` wrapper with a total order (for canonical sorting).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PredOrd(pub Pred);

impl PartialOrd for PredOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PredOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0 as u8).cmp(&(other.0 as u8))
    }
}

/// One alpha memory: class + canonical tests + successor edges.
///
/// The test vectors are `Arc`-shared with the intern map's key, so each
/// canonical test set is stored exactly once.
#[derive(Clone, Debug)]
pub struct AlphaMem {
    /// This memory's id.
    pub id: AlphaMemId,
    /// Required wme class.
    pub class: Symbol,
    /// Constant tests (sorted).
    pub tests: Arc<[AlphaTest]>,
    /// Intra-element tests (sorted).
    pub intra: Arc<[IntraTest]>,
    /// Two-input nodes fed by this memory (side is always `Right`).
    pub successors: Vec<(NodeId, Side)>,
}

impl AlphaMem {
    /// Does a wme of the right class pass all tests?
    pub fn passes(&self, w: &Wme) -> bool {
        self.tests.iter().all(|t| t.pred.0.eval(w.field(t.field), t.value))
            && self.intra.iter().all(|t| t.pred.0.eval(w.field(t.field_a), w.field(t.field_b)))
    }

    /// Number of individual tests (for cost accounting).
    pub fn test_count(&self) -> usize {
        self.tests.len() + self.intra.len()
    }
}

type AlphaKey = (Symbol, Arc<[AlphaTest]>, Arc<[IntraTest]>);

/// A residual test — one not consumed by jump-table routing — in the
/// per-class canonical pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ResidualTest {
    Const(AlphaTest),
    Intra(IntraTest),
}

impl ResidualTest {
    #[inline]
    fn eval(self, w: &Wme) -> bool {
        match self {
            ResidualTest::Const(t) => t.pred.0.eval(w.field(t.field), t.value),
            ResidualTest::Intra(t) => t.pred.0.eval(w.field(t.field_a), w.field(t.field_b)),
        }
    }
}

/// How a memory is reached by the indexed classifier.
#[derive(Clone, Debug)]
enum Route {
    /// Via the jump bucket for this equality test.
    Jump { field: u16, value: Value },
    /// On the class's always-scanned fallthrough list.
    Always,
}

/// Per-memory index entry (parallel to `AlphaNet::mems`).
#[derive(Clone, Debug)]
struct MemIndexEntry {
    route: Route,
    /// Ids into the owning class's residual pool.
    residual: Vec<u32>,
}

/// The per-class level-two discrimination structure.
#[derive(Default, Debug)]
struct ClassIndex {
    /// Canonical pool of distinct residual tests.
    pool: Vec<ResidualTest>,
    pool_ids: FxHashMap<ResidualTest, u32>,
    /// Fields with at least one jump bucket, sorted (probe order).
    probe_fields: Vec<u16>,
    /// `(field, value)` → memories discriminated by that equality test.
    jump: FxHashMap<(u16, Value), Vec<AlphaMemId>>,
    /// Memories with no equality constant test.
    always: Vec<AlphaMemId>,
    /// Sum of `test_count` over the class's memories — what the linear scan
    /// would charge per wme (savings accounting).
    linear_tests: u32,
}

impl ClassIndex {
    fn test_id(&mut self, t: ResidualTest) -> u32 {
        if let Some(&id) = self.pool_ids.get(&t) {
            return id;
        }
        let id = self.pool.len() as u32;
        self.pool.push(t);
        self.pool_ids.insert(t, id);
        id
    }
}

/// Reusable per-thread memo for shared residual evaluation: slot `i` caches
/// the verdict of the current class's pool test `i` for the wme being
/// classified. Epoch stamping makes cross-call (and cross-class) reuse free
/// of clearing costs; thread-locality makes concurrent `classify` calls
/// from the match processes safe without touching the shared network.
#[derive(Default)]
struct EvalScratch {
    stamp: Vec<u64>,
    val: Vec<bool>,
    epoch: u64,
}

impl EvalScratch {
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.val.resize(n, false);
        }
        self.epoch += 1;
    }

    /// Memoized evaluation; returns `(freshly_evaluated, verdict)`.
    #[inline]
    fn eval(&mut self, tid: u32, pool: &[ResidualTest], w: &Wme) -> (bool, bool) {
        let i = tid as usize;
        if self.stamp[i] == self.epoch {
            return (false, self.val[i]);
        }
        let v = pool[i].eval(w);
        self.stamp[i] = self.epoch;
        self.val[i] = v;
        (true, v)
    }
}

thread_local! {
    static SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::default());
}

/// The alpha network: all alpha memories, indexed by class and, within each
/// class, by a `(field, value)` jump table over equality constant tests.
#[derive(Debug)]
pub struct AlphaNet {
    mems: Vec<AlphaMem>,
    by_class: FxHashMap<Symbol, Vec<AlphaMemId>>,
    interned: FxHashMap<AlphaKey, AlphaMemId>,
    class_index: FxHashMap<Symbol, ClassIndex>,
    /// Parallel to `mems`.
    entries: Vec<MemIndexEntry>,
    /// When `false`, [`AlphaNet::classify`] falls back to the linear scan
    /// (the `alpha_discrimination` bench's baseline switch).
    pub use_index: bool,
}

impl Default for AlphaNet {
    fn default() -> AlphaNet {
        AlphaNet {
            mems: Vec::new(),
            by_class: FxHashMap::default(),
            interned: FxHashMap::default(),
            class_index: FxHashMap::default(),
            entries: Vec::new(),
            use_index: true,
        }
    }
}

/// Result of pushing one wme through the discrimination network.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AlphaStats {
    /// Constant/intra tests evaluated (jump-table probes count as one
    /// hashed test each, like the class test).
    pub tests_run: u32,
    /// Alpha memories the wme entered.
    pub mems_matched: u32,
    /// Jump-table probes performed (0 under the linear scan).
    pub probes: u32,
    /// Candidate memories whose residual tests were consulted (under the
    /// linear scan: every memory of the class).
    pub candidates: u32,
    /// Tests the linear scan would have charged minus `tests_run`
    /// (0 under the linear scan).
    pub tests_saved: u32,
}

impl AlphaNet {
    /// Empty network.
    pub fn new() -> AlphaNet {
        AlphaNet::default()
    }

    /// Get-or-create the alpha memory for a canonical test set. Returns the
    /// id and whether it already existed (was shared). A newly created
    /// memory is spliced into the discrimination index immediately, so
    /// run-time additions need no rebuild.
    pub fn intern(
        &mut self,
        class: Symbol,
        mut tests: Vec<AlphaTest>,
        mut intra: Vec<IntraTest>,
    ) -> (AlphaMemId, bool) {
        tests.sort_unstable();
        tests.dedup();
        intra.sort_unstable();
        intra.dedup();
        // The canonical vectors are Arc-shared between the intern map's key
        // and the memory itself: one buffer each, no deep clones.
        let tests: Arc<[AlphaTest]> = tests.into();
        let intra: Arc<[IntraTest]> = intra.into();
        let key = (class, tests.clone(), intra.clone());
        if let Some(&id) = self.interned.get(&key) {
            return (id, true);
        }
        let id = AlphaMemId(self.mems.len() as u32);
        self.mems.push(AlphaMem { id, class, tests, intra, successors: Vec::new() });
        self.by_class.entry(class).or_default().push(id);
        self.interned.insert(key, id);
        self.splice_into_index(id);
        (id, false)
    }

    /// Look up the memory for a canonical test set **without** creating
    /// one. Canonicalizes exactly like [`AlphaNet::intern`], so a session
    /// overlay can probe the frozen base network for a shareable memory
    /// before interning privately.
    pub fn lookup(
        &self,
        class: Symbol,
        tests: &[AlphaTest],
        intra: &[IntraTest],
    ) -> Option<AlphaMemId> {
        let mut tests = tests.to_vec();
        tests.sort_unstable();
        tests.dedup();
        let mut intra = intra.to_vec();
        intra.sort_unstable();
        intra.dedup();
        let key = (class, Arc::from(tests), Arc::from(intra));
        self.interned.get(&key).copied()
    }

    /// Register a new memory in its class's jump table / fallthrough list
    /// and intern its residual tests into the class pool.
    fn splice_into_index(&mut self, id: AlphaMemId) {
        let (class, tests, intra, tcount) = {
            let m = &self.mems[id.0 as usize];
            (m.class, m.tests.clone(), m.intra.clone(), m.test_count() as u32)
        };
        let idx = self.class_index.entry(class).or_default();
        idx.linear_tests = idx.linear_tests.saturating_add(tcount);
        // The discriminator: the first equality constant test in canonical
        // order (deterministic, so indexed and linear classification agree
        // run-to-run).
        let disc = tests.iter().position(|t| t.pred.0 == Pred::Eq);
        let mut residual = Vec::with_capacity(tests.len() + intra.len());
        for (i, t) in tests.iter().enumerate() {
            if Some(i) != disc {
                residual.push(idx.test_id(ResidualTest::Const(*t)));
            }
        }
        for t in intra.iter() {
            residual.push(idx.test_id(ResidualTest::Intra(*t)));
        }
        let route = match disc {
            Some(i) => {
                let t = tests[i];
                idx.jump.entry((t.field, t.value)).or_default().push(id);
                if !idx.probe_fields.contains(&t.field) {
                    idx.probe_fields.push(t.field);
                    idx.probe_fields.sort_unstable();
                }
                Route::Jump { field: t.field, value: t.value }
            }
            None => {
                idx.always.push(id);
                Route::Always
            }
        };
        debug_assert_eq!(self.entries.len(), id.0 as usize);
        self.entries.push(MemIndexEntry { route, residual });
    }

    /// Register a successor two-input node on an alpha memory.
    pub fn add_successor(&mut self, mem: AlphaMemId, node: NodeId) {
        self.mems[mem.0 as usize].successors.push((node, Side::Right));
    }

    /// Access an alpha memory.
    pub fn get(&self, id: AlphaMemId) -> &AlphaMem {
        &self.mems[id.0 as usize]
    }

    /// All memories.
    pub fn mems(&self) -> &[AlphaMem] {
        &self.mems
    }

    /// Mutable access for network surgery (rollback of failed additions).
    pub(crate) fn mems_mut(&mut self) -> &mut [AlphaMem] {
        &mut self.mems
    }

    /// Push a wme through the discrimination net, calling `hit` for each
    /// matching alpha memory (in ascending memory-id order, matching the
    /// linear scan). Returns test/match counts for cost models.
    pub fn classify(&self, w: &Wme, hit: impl FnMut(&AlphaMem)) -> AlphaStats {
        if self.use_index {
            self.classify_indexed(w, hit)
        } else {
            self.classify_linear(w, hit)
        }
    }

    fn classify_indexed(&self, w: &Wme, mut hit: impl FnMut(&AlphaMem)) -> AlphaStats {
        // The class lookup is the first discrimination: one hashed test.
        let mut stats = AlphaStats { tests_run: 1, ..AlphaStats::default() };
        let Some(idx) = self.class_index.get(&w.class) else {
            return stats;
        };
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.begin(idx.pool.len());
            let mut matched: Vec<AlphaMemId> = Vec::new();
            for &id in &idx.always {
                self.consider(idx, w, id, &mut scratch, &mut stats, &mut matched);
            }
            for &f in &idx.probe_fields {
                // One hash probe per indexed field — the jumptable analogue:
                // counted as a single test, like the class lookup.
                stats.probes += 1;
                stats.tests_run += 1;
                if let Some(bucket) = idx.jump.get(&(f, w.field(f))) {
                    for &id in bucket {
                        self.consider(idx, w, id, &mut scratch, &mut stats, &mut matched);
                    }
                }
            }
            // Buckets partition the memories, so `matched` is duplicate-free;
            // sorting restores the linear scan's ascending-id hit order.
            matched.sort_unstable();
            for id in matched {
                stats.mems_matched += 1;
                hit(&self.mems[id.0 as usize]);
            }
        });
        stats.tests_saved = (1 + idx.linear_tests).saturating_sub(stats.tests_run);
        stats
    }

    /// Evaluate one candidate's residual tests through the shared memo.
    #[inline]
    fn consider(
        &self,
        idx: &ClassIndex,
        w: &Wme,
        id: AlphaMemId,
        scratch: &mut EvalScratch,
        stats: &mut AlphaStats,
        matched: &mut Vec<AlphaMemId>,
    ) {
        stats.candidates += 1;
        for &tid in &self.entries[id.0 as usize].residual {
            let (fresh, ok) = scratch.eval(tid, &idx.pool, w);
            if fresh {
                stats.tests_run += 1;
            }
            if !ok {
                return;
            }
        }
        matched.push(id);
    }

    /// The pre-index linear scan: every memory of the class is charged its
    /// full constant-test chain. Kept as the differential oracle for the
    /// indexed classifier and as the `alpha_discrimination` baseline.
    pub fn classify_linear(&self, w: &Wme, mut hit: impl FnMut(&AlphaMem)) -> AlphaStats {
        let mut stats = AlphaStats::default();
        // The class test itself is the first discrimination (hash lookup,
        // counted as one test — PSM-E's class-indexing optimization that
        // "reduces constant-test activations by almost half").
        stats.tests_run += 1;
        if let Some(ids) = self.by_class.get(&w.class) {
            for &id in ids {
                let m = &self.mems[id.0 as usize];
                stats.candidates += 1;
                stats.tests_run += m.test_count() as u32;
                if m.passes(w) {
                    stats.mems_matched += 1;
                    hit(m);
                }
            }
        }
        stats
    }

    /// Number of alpha memories.
    pub fn len(&self) -> usize {
        self.mems.len()
    }

    /// `true` when no memory exists.
    pub fn is_empty(&self) -> bool {
        self.mems.is_empty()
    }

    /// Check every index invariant; returns a description of the first
    /// violation. Used by the differential proptests and by debug builds
    /// after network surgery (including rollback of failed additions).
    pub fn validate_index(&self) -> Result<(), String> {
        if self.entries.len() != self.mems.len() {
            return Err(format!(
                "index entries {} != memories {}",
                self.entries.len(),
                self.mems.len()
            ));
        }
        let mut per_class_tests: FxHashMap<Symbol, u32> = FxHashMap::default();
        for (m, e) in self.mems.iter().zip(&self.entries) {
            let idx = self
                .class_index
                .get(&m.class)
                .ok_or_else(|| format!("mem {} has no class index", m.id.0))?;
            *per_class_tests.entry(m.class).or_insert(0) += m.test_count() as u32;
            // Route points at a real discriminator and exactly one listing.
            match e.route {
                Route::Jump { field, value } => {
                    let has = m
                        .tests
                        .iter()
                        .any(|t| t.pred.0 == Pred::Eq && t.field == field && t.value == value);
                    if !has {
                        return Err(format!("mem {} routed by a test it lacks", m.id.0));
                    }
                    let bucket = idx
                        .jump
                        .get(&(field, value))
                        .ok_or_else(|| format!("mem {} bucket missing", m.id.0))?;
                    if bucket.iter().filter(|&&i| i == m.id).count() != 1 {
                        return Err(format!("mem {} not listed once in its bucket", m.id.0));
                    }
                    if !idx.probe_fields.contains(&field) {
                        return Err(format!("mem {} field {} not probed", m.id.0, field));
                    }
                    if idx.always.contains(&m.id) {
                        return Err(format!("mem {} both jump-routed and always", m.id.0));
                    }
                }
                Route::Always => {
                    if m.tests.iter().any(|t| t.pred.0 == Pred::Eq) {
                        return Err(format!("mem {} has an unused equality test", m.id.0));
                    }
                    if idx.always.iter().filter(|&&i| i == m.id).count() != 1 {
                        return Err(format!("mem {} not listed once in always", m.id.0));
                    }
                }
            }
            // Residuals are valid pool ids covering tests ∖ discriminator.
            let expect =
                m.test_count() - matches!(e.route, Route::Jump { .. }) as usize;
            if e.residual.len() != expect {
                return Err(format!("mem {} residual count {}", m.id.0, e.residual.len()));
            }
            for &tid in &e.residual {
                if tid as usize >= idx.pool.len() {
                    return Err(format!("mem {} residual id {} out of pool", m.id.0, tid));
                }
            }
        }
        for (class, idx) in &self.class_index {
            let expect = per_class_tests.get(class).copied().unwrap_or(0);
            if idx.linear_tests != expect {
                return Err(format!(
                    "class {class} linear_tests {} != {expect}",
                    idx.linear_tests
                ));
            }
            if idx.pool.len() != idx.pool_ids.len() {
                return Err(format!("class {class} pool/pool_ids diverge"));
            }
        }
        Ok(())
    }

    /// Count of distinct constant-test nodes under maximal sharing (each
    /// distinct `(class, field, pred, value)` is one shared node) — used by
    /// the code-size model.
    pub fn distinct_const_tests(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for m in &self.mems {
            for t in m.tests.iter() {
                set.insert((m.class, *t));
            }
            for t in m.intra.iter() {
                set.insert((m.class, AlphaTest { field: t.field_a, pred: t.pred, value: Value::Int(t.field_b as i64) }));
            }
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_ops::{intern, ClassRegistry};

    fn w(reg: &ClassRegistry, s: &str) -> Wme {
        psme_ops::parse_wme(s, reg).unwrap()
    }

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("block", &["name", "color", "on"]);
        r.declare_str("hand", &["state"]);
        r
    }

    fn t(field: u16, pred: Pred, value: Value) -> AlphaTest {
        AlphaTest { field, pred: PredOrd(pred), value }
    }

    /// Both classifiers over the same wme, with full agreement checks.
    fn both(a: &AlphaNet, w: &Wme) -> (Vec<AlphaMemId>, AlphaStats, AlphaStats) {
        let mut ih = Vec::new();
        let is = a.classify_indexed(w, |m| ih.push(m.id));
        let mut lh = Vec::new();
        let ls = a.classify_linear(w, |m| lh.push(m.id));
        assert_eq!(ih, lh, "hit sets and order must agree");
        assert_eq!(is.mems_matched, ls.mems_matched);
        assert!(is.tests_run <= ls.tests_run, "indexed may never test more");
        assert_eq!(is.tests_saved, ls.tests_run - is.tests_run);
        a.validate_index().unwrap();
        (ih, is, ls)
    }

    #[test]
    fn intern_shares_equal_test_sets() {
        let mut a = AlphaNet::new();
        let (id1, shared1) = a.intern(
            intern("block"),
            vec![t(1, Pred::Eq, Value::sym("blue")), t(0, Pred::Eq, Value::sym("b1"))],
            vec![],
        );
        // Same tests in different order intern to the same memory.
        let (id2, shared2) = a.intern(
            intern("block"),
            vec![t(0, Pred::Eq, Value::sym("b1")), t(1, Pred::Eq, Value::sym("blue"))],
            vec![],
        );
        assert!(!shared1);
        assert!(shared2);
        assert_eq!(id1, id2);
        assert_eq!(a.len(), 1);
        a.validate_index().unwrap();
    }

    #[test]
    fn classify_filters_by_class_and_tests() {
        let r = reg();
        let mut a = AlphaNet::new();
        let (blue, _) = a.intern(intern("block"), vec![t(1, Pred::Eq, Value::sym("blue"))], vec![]);
        let (anyblock, _) = a.intern(intern("block"), vec![], vec![]);
        let (_hand, _) = a.intern(intern("hand"), vec![], vec![]);

        let mut hits = Vec::new();
        let stats = a.classify(&w(&r, "(block ^name b1 ^color blue)"), |m| hits.push(m.id));
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&blue) && hits.contains(&anyblock));
        assert!(stats.tests_run >= 2);

        hits.clear();
        a.classify(&w(&r, "(block ^name b2 ^color red)"), |m| hits.push(m.id));
        assert_eq!(hits, vec![anyblock]);

        hits.clear();
        a.classify(&w(&r, "(hand ^state free)"), |m| hits.push(m.id));
        assert_eq!(hits.len(), 1);

        both(&a, &w(&r, "(block ^name b1 ^color blue)"));
        both(&a, &w(&r, "(block ^name b2 ^color red)"));
        both(&a, &w(&r, "(hand ^state free)"));
    }

    #[test]
    fn intra_tests_compare_fields() {
        let r = reg();
        let mut a = AlphaNet::new();
        // (block ^name <x> ^on <x>) — name field equals on field
        let (id, _) = a.intern(
            intern("block"),
            vec![],
            vec![IntraTest { field_a: 2, pred: PredOrd(Pred::Eq), field_b: 0 }],
        );
        let mut hits = Vec::new();
        a.classify(&w(&r, "(block ^name b1 ^on b1)"), |m| hits.push(m.id));
        assert_eq!(hits, vec![id]);
        hits.clear();
        a.classify(&w(&r, "(block ^name b1 ^on b2)"), |m| hits.push(m.id));
        assert!(hits.is_empty());
        both(&a, &w(&r, "(block ^name b1 ^on b1)"));
    }

    #[test]
    fn relational_const_tests() {
        let mut r = ClassRegistry::new();
        r.declare_str("count", &["n"]);
        let mut a = AlphaNet::new();
        let (id, _) = a.intern(intern("count"), vec![t(0, Pred::Gt, Value::Int(5))], vec![]);
        let mut hits = Vec::new();
        a.classify(&w(&r, "(count ^n 9)"), |m| hits.push(m.id));
        assert_eq!(hits, vec![id]);
        hits.clear();
        a.classify(&w(&r, "(count ^n 5)"), |m| hits.push(m.id));
        assert!(hits.is_empty());
        both(&a, &w(&r, "(count ^n 9)"));
    }

    #[test]
    fn successors_accumulate() {
        let mut a = AlphaNet::new();
        let (id, _) = a.intern(intern("block"), vec![], vec![]);
        a.add_successor(id, 3);
        a.add_successor(id, 7);
        assert_eq!(a.get(id).successors, vec![(3, Side::Right), (7, Side::Right)]);
    }

    #[test]
    fn jump_routing_skips_unrelated_memories() {
        let r = reg();
        let mut a = AlphaNet::new();
        // Many memories discriminated on the same field, distinct values:
        // one probe replaces the whole scan.
        for i in 0..20 {
            a.intern(intern("block"), vec![t(0, Pred::Eq, Value::sym(&format!("b{i}")))], vec![]);
        }
        let (_, is, ls) = both(&a, &w(&r, "(block ^name b7)"));
        assert_eq!(is.probes, 1);
        assert_eq!(is.candidates, 1, "only the b7 memory is consulted");
        assert_eq!(is.tests_run, 2, "class + one probe");
        assert_eq!(ls.tests_run, 21, "linear pays every memory's chain");
        assert_eq!(is.tests_saved, 19);
    }

    #[test]
    fn shared_residual_tests_run_once_per_wme() {
        let r = reg();
        let mut a = AlphaNet::new();
        // Three memories sharing the ≠nil attribute-present test on `on`,
        // with no equality discriminator: the shared residual is evaluated
        // once, not three times.
        for pred in [Pred::Gt, Pred::Lt, Pred::Ge] {
            a.intern(
                intern("block"),
                vec![t(2, Pred::Ne, Value::Nil), t(1, pred, Value::Int(3))],
                vec![],
            );
        }
        let (_, is, ls) = both(&a, &w(&r, "(block ^color 5 ^on x)"));
        assert_eq!(ls.tests_run, 7, "1 class + 3×2 chain tests");
        // Indexed: class + ≠nil once + three distinct predicate tests.
        assert_eq!(is.tests_run, 5);
        assert_eq!(is.candidates, 3);
    }

    #[test]
    fn runtime_splice_keeps_index_consistent() {
        let r = reg();
        let mut a = AlphaNet::new();
        a.intern(intern("block"), vec![t(1, Pred::Eq, Value::sym("blue"))], vec![]);
        let wme = w(&r, "(block ^name b1 ^color blue ^on b1)");
        let (h1, _, _) = both(&a, &wme);
        assert_eq!(h1.len(), 1);
        // Splice more memories at "run time" — same bucket, a new bucket on
        // another field, a fallthrough, and an intra memory.
        a.intern(intern("block"), vec![t(1, Pred::Eq, Value::sym("blue")), t(0, Pred::Eq, Value::sym("b1"))], vec![]);
        a.intern(intern("block"), vec![t(0, Pred::Eq, Value::sym("b1"))], vec![]);
        a.intern(intern("block"), vec![t(2, Pred::Ne, Value::Nil)], vec![]);
        a.intern(
            intern("block"),
            vec![],
            vec![IntraTest { field_a: 2, pred: PredOrd(Pred::Eq), field_b: 0 }],
        );
        let (h2, is, _) = both(&a, &wme);
        assert_eq!(h2.len(), 5, "all five memories match");
        assert_eq!(is.probes, 2, "fields 0 and 1 are probed");
    }

    #[test]
    fn hit_order_is_ascending_memory_id() {
        let r = reg();
        let mut a = AlphaNet::new();
        // Interleave routes so bucket order ≠ id order without the sort.
        let (m0, _) = a.intern(intern("block"), vec![t(2, Pred::Ne, Value::Nil)], vec![]);
        let (m1, _) = a.intern(intern("block"), vec![t(0, Pred::Eq, Value::sym("b1"))], vec![]);
        let (m2, _) = a.intern(intern("block"), vec![], vec![]);
        let (m3, _) = a.intern(intern("block"), vec![t(1, Pred::Eq, Value::sym("blue"))], vec![]);
        let (hits, _, _) = both(&a, &w(&r, "(block ^name b1 ^color blue ^on b2)"));
        assert_eq!(hits, vec![m0, m1, m2, m3]);
    }

    #[test]
    fn linear_fallback_switch() {
        let r = reg();
        let mut a = AlphaNet::new();
        a.intern(intern("block"), vec![t(1, Pred::Eq, Value::sym("blue"))], vec![]);
        a.use_index = false;
        let stats = a.classify(&w(&r, "(block ^color blue)"), |_| {});
        assert_eq!(stats.probes, 0);
        assert_eq!(stats.tests_saved, 0);
        assert_eq!(stats.tests_run, 2);
    }

    #[test]
    fn unknown_class_costs_one_test() {
        let mut r = ClassRegistry::new();
        r.declare_str("ghost", &["x"]);
        let a = AlphaNet::new();
        let stats = a.classify(&w(&r, "(ghost ^x 1)"), |_| unreachable!());
        assert_eq!(stats, AlphaStats { tests_run: 1, ..AlphaStats::default() });
    }
}
