//! Compiling productions into the network — including at run time.
//!
//! This is the Rust analogue of PSM-E's run-time machine-code generation
//! (§5.1): locating shared nodes through the high-level network description,
//! appending new nodes with strictly increasing ids, and splicing them into
//! their parents' successor lists (our successor vectors play the role of
//! the jumptable). The caller is responsible for running the state update
//! (§5.2, see [`crate::update`]) afterwards so the new nodes' memories are
//! consistent with current working memory.

use crate::alpha::{AlphaMemId, AlphaTest, IntraTest, PredOrd};
use crate::network::{NetworkOrg, ProdInfo, ReteNetwork};
use crate::node::{
    BetaNode, JoinTest, KeyPart, MergeSrc, NodeId, NodeKind, NodeSignature, RightSrc, ROOT,
};
use crate::util::FxHashMap;
use psme_ops::{BindSite, Cond, CondElem, Pred, Production, Symbol, VarId};
use std::fmt;
use std::sync::Arc;

/// What the production compiler needs from its target network. Implemented
/// by [`ReteNetwork`] (monolithic append) and by
/// [`crate::session::SessionNet`] (append into the session's overlay
/// region, recording splices onto the frozen base as overlay deltas).
pub(crate) trait BuildTarget {
    /// Get-or-create the alpha memory for a canonical test set.
    fn intern_alpha(
        &mut self,
        class: Symbol,
        tests: Vec<AlphaTest>,
        intra: Vec<IntraTest>,
    ) -> AlphaMemId;
    /// Look up a shareable two-input node with this signature.
    fn find_shared_sig(&self, sig: &NodeSignature) -> Option<NodeId>;
    /// Record `prod_name` on an existing shared node; returns
    /// `(is_two_input, coverage_len, right_coverage_len)`.
    fn note_shared(&mut self, id: NodeId, prod_name: Symbol) -> (bool, usize, usize);
    /// Append a node, wiring its parent / right-source edges.
    fn push_node(&mut self, node: BetaNode) -> NodeId;
    /// The production index the in-progress build will occupy.
    fn next_prod_index(&self) -> u32;
}

impl BuildTarget for ReteNetwork {
    fn intern_alpha(
        &mut self,
        class: Symbol,
        tests: Vec<AlphaTest>,
        intra: Vec<IntraTest>,
    ) -> AlphaMemId {
        self.alpha.intern(class, tests, intra).0
    }

    fn find_shared_sig(&self, sig: &NodeSignature) -> Option<NodeId> {
        self.find_shared(sig)
    }

    fn note_shared(&mut self, id: NodeId, prod_name: Symbol) -> (bool, usize, usize) {
        let n = &mut self.betas[id as usize];
        if !n.prod_names.contains(&prod_name) {
            n.prod_names.push(prod_name);
        }
        (n.is_two_input(), n.coverage.len(), n.right_coverage.len())
    }

    fn push_node(&mut self, node: BetaNode) -> NodeId {
        ReteNetwork::push_node(self, node)
    }

    fn next_prod_index(&self) -> u32 {
        self.prods.len() as u32
    }
}

/// A compile error (invalid production or invalid bilinear grouping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(pub String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rete build error: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// Outcome of adding one production.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddResult {
    /// Index into [`ReteNetwork::prods`].
    pub prod_idx: u32,
    /// All nodes with id `>= first_new` were created by this addition.
    pub first_new: NodeId,
    /// Newly created two-input nodes.
    pub new_two_input: u32,
    /// Two-input nodes reused from earlier productions.
    pub shared_two_input: u32,
    /// The terminal P node.
    pub p_node: NodeId,
}

struct Builder<'a, T: BuildTarget> {
    net: &'a mut T,
    prod: &'a Production,
    prod_name: Symbol,
    /// pos_idx → flat condition index.
    flat_of_pos: Vec<u16>,
    /// ce index → flat index of its first condition.
    flat_base: Vec<u16>,
    /// In-scope negation-local bindings: var → (flat, field).
    locals: FxHashMap<VarId, (u16, u16)>,
    new_two: u32,
    shared_two: u32,
}

struct CompiledCond {
    alpha_tests: Vec<AlphaTest>,
    intra: Vec<IntraTest>,
    /// Equality joins: (left_slot, left_field, right_field).
    eqs: Vec<(u16, u16, u16)>,
    tests: Vec<JoinTest>,
}

fn slot_of(cov: &[u16], flat: u16) -> Option<u16> {
    cov.iter().position(|&x| x == flat).map(|i| i as u16)
}

impl<'a, T: BuildTarget> Builder<'a, T> {
    fn err<R>(&self, msg: impl Into<String>) -> Result<R, BuildError> {
        Err(BuildError(format!("{}: {}", self.prod_name, msg.into())))
    }

    fn compile_cond(&mut self, c: &Cond, f: u16, cov: &[u16]) -> Result<CompiledCond, BuildError> {
        let mut out = CompiledCond {
            alpha_tests: Vec::new(),
            intra: Vec::new(),
            eqs: Vec::new(),
            tests: Vec::new(),
        };
        let mut bound_here: FxHashMap<VarId, u16> = FxHashMap::default();
        for t in &c.tests {
            match *t {
                psme_ops::FieldTest::Const { field, pred, value } => {
                    out.alpha_tests.push(AlphaTest { field, pred: PredOrd(pred), value });
                }
                psme_ops::FieldTest::Var { field, pred, var } => {
                    // A variable test means "the attribute is present": an
                    // unset (Nil) field never matches a variable. Compiled
                    // as a constant ≠nil test so it is shared in the alpha
                    // network.
                    out.alpha_tests.push(AlphaTest {
                        field,
                        pred: PredOrd(Pred::Ne),
                        value: psme_ops::Value::Nil,
                    });
                    match self.prod.bind_sites[var.0 as usize] {
                        BindSite::Pos { pos_idx, field: bf } => {
                            let sf = self.flat_of_pos[pos_idx as usize];
                            if sf == f {
                                if bf == field && pred == Pred::Eq && !bound_here.contains_key(&var)
                                {
                                    bound_here.insert(var, field);
                                } else {
                                    out.intra.push(IntraTest {
                                        field_a: field,
                                        pred: PredOrd(pred),
                                        field_b: bf,
                                    });
                                }
                            } else {
                                let ls = match slot_of(cov, sf) {
                                    Some(s) => s,
                                    None => {
                                        return self.err(format!(
                                            "variable <{}> is bound in a condition outside this \
                                             chain (invalid bilinear grouping?)",
                                            self.prod.var_names[var.0 as usize]
                                        ))
                                    }
                                };
                                if pred == Pred::Eq {
                                    out.eqs.push((ls, bf, field));
                                } else {
                                    out.tests.push(JoinTest {
                                        left_slot: ls,
                                        left_field: bf,
                                        right_slot: 0,
                                        right_field: field,
                                        pred,
                                    });
                                }
                            }
                        }
                        BindSite::NegLocal { .. } => match self.locals.get(&var).copied() {
                            None => {
                                debug_assert_eq!(pred, Pred::Eq, "ops validates binding preds");
                                self.locals.insert(var, (f, field));
                            }
                            Some((lf, bf)) => {
                                if lf == f {
                                    out.intra.push(IntraTest {
                                        field_a: field,
                                        pred: PredOrd(pred),
                                        field_b: bf,
                                    });
                                } else {
                                    let ls = match slot_of(cov, lf) {
                                        Some(s) => s,
                                        None => {
                                            return self.err(format!(
                                                "negation-local variable <{}> escapes its chain",
                                                self.prod.var_names[var.0 as usize]
                                            ))
                                        }
                                    };
                                    if pred == Pred::Eq {
                                        out.eqs.push((ls, bf, field));
                                    } else {
                                        out.tests.push(JoinTest {
                                            left_slot: ls,
                                            left_field: bf,
                                            right_slot: 0,
                                            right_field: field,
                                            pred,
                                        });
                                    }
                                }
                            }
                        },
                        BindSite::Rhs => {
                            return self.err(format!(
                                "RHS-bound variable <{}> used in the LHS",
                                self.prod.var_names[var.0 as usize]
                            ))
                        }
                    }
                }
            }
        }
        out.eqs.sort_unstable();
        out.tests.sort_unstable();
        Ok(out)
    }

    /// Find-or-create a node; returns its id.
    fn make_node(&mut self, mut node: BetaNode) -> NodeId {
        node.prod_names = vec![self.prod_name];
        let sig = node.signature();
        if let Some(id) = self.net.find_shared_sig(&sig) {
            let (two_input, cov_len, right_cov_len) = self.net.note_shared(id, self.prod_name);
            // Structural sanity: equal signatures imply equal token shapes.
            // (The *labels* in `coverage` may differ between the sharing
            // productions — e.g. a chunk whose shared prefix sits at other
            // flat CE indices — but slots are interpreted positionally per
            // production, so only the widths must agree.)
            debug_assert_eq!(cov_len, node.coverage.len());
            debug_assert_eq!(right_cov_len, node.right_coverage.len());
            let _ = (cov_len, right_cov_len);
            if two_input {
                self.shared_two += 1;
            }
            return id;
        }
        if node.is_two_input() {
            self.new_two += 1;
        }
        self.net.push_node(node)
    }

    /// Build a positive condition as a Join node on `(cur, cov)`.
    fn build_pos(
        &mut self,
        c: &Cond,
        f: u16,
        cur: NodeId,
        cov: &[u16],
    ) -> Result<(NodeId, Vec<u16>), BuildError> {
        let cc = self.compile_cond(c, f, cov)?;
        let alpha = self.net.intern_alpha(c.class, cc.alpha_tests, cc.intra);
        let left_key: Vec<KeyPart> =
            cc.eqs.iter().map(|&(ls, lf, _)| KeyPart::Val { slot: ls, field: lf }).collect();
        let right_key: Vec<KeyPart> =
            cc.eqs.iter().map(|&(_, _, rf)| KeyPart::Val { slot: 0, field: rf }).collect();
        let mut coverage = cov.to_vec();
        coverage.push(f);
        let mut merge: Vec<MergeSrc> = (0..cov.len() as u16).map(MergeSrc::L).collect();
        merge.push(MergeSrc::R(0));
        let id = self.make_node(BetaNode {
            id: 0,
            kind: NodeKind::Join,
            parent: cur,
            right: Some(RightSrc::Alpha(alpha)),
            tests: cc.tests,
            left_key,
            right_key,
            coverage: coverage.clone(),
            right_coverage: vec![f],
            merge,
            out_edges: vec![],
            prod_names: vec![],
        });
        Ok((id, coverage))
    }

    /// Build a negated condition as a Neg node (coverage unchanged).
    fn build_neg(&mut self, c: &Cond, f: u16, cur: NodeId, cov: &[u16]) -> Result<NodeId, BuildError> {
        let saved_locals = self.locals.clone();
        let cc = self.compile_cond(c, f, cov)?;
        self.locals = saved_locals; // CE-local bindings go out of scope
        let alpha = self.net.intern_alpha(c.class, cc.alpha_tests, cc.intra);
        let left_key: Vec<KeyPart> =
            cc.eqs.iter().map(|&(ls, lf, _)| KeyPart::Val { slot: ls, field: lf }).collect();
        let right_key: Vec<KeyPart> =
            cc.eqs.iter().map(|&(_, _, rf)| KeyPart::Val { slot: 0, field: rf }).collect();
        let id = self.make_node(BetaNode {
            id: 0,
            kind: NodeKind::Neg,
            parent: cur,
            right: Some(RightSrc::Alpha(alpha)),
            tests: cc.tests,
            left_key,
            right_key,
            coverage: cov.to_vec(),
            right_coverage: vec![f],
            merge: vec![],
            out_edges: vec![],
            prod_names: vec![],
        });
        Ok(id)
    }

    /// Build a conjunctive negation: subnetwork joins + a beta-right Neg.
    fn build_ncc(
        &mut self,
        conds: &[Cond],
        flat_start: u16,
        cur: NodeId,
        cov: &[u16],
    ) -> Result<NodeId, BuildError> {
        let saved_locals = self.locals.clone();
        let mut scur = cur;
        let mut scov = cov.to_vec();
        for (j, c) in conds.iter().enumerate() {
            let (n, c2) = self.build_pos(c, flat_start + j as u16, scur, &scov)?;
            scur = n;
            scov = c2;
        }
        self.locals = saved_locals; // group-local bindings go out of scope
        let k = cov.len() as u16;
        let left_key: Vec<KeyPart> = (0..k).map(|i| KeyPart::Id { slot: i }).collect();
        let right_key: Vec<KeyPart> = (0..k).map(|i| KeyPart::Id { slot: i }).collect();
        let id = self.make_node(BetaNode {
            id: 0,
            kind: NodeKind::Neg,
            parent: cur,
            right: Some(RightSrc::Beta(scur)),
            tests: vec![],
            left_key,
            right_key,
            coverage: cov.to_vec(),
            right_coverage: scov,
            merge: vec![],
            out_edges: vec![],
            prod_names: vec![],
        });
        Ok(id)
    }

    /// Build a chain of condition elements onto `(cur, cov)`.
    fn build_chain(
        &mut self,
        ces: &[(usize, &CondElem)],
        mut cur: NodeId,
        mut cov: Vec<u16>,
    ) -> Result<(NodeId, Vec<u16>), BuildError> {
        for &(ce_idx, ce) in ces {
            let f = self.flat_base[ce_idx];
            match ce {
                CondElem::Pos(c) => {
                    let (n, c2) = self.build_pos(c, f, cur, &cov)?;
                    cur = n;
                    cov = c2;
                }
                CondElem::Neg(c) => {
                    if cur == ROOT {
                        return self.err("a negated condition cannot start a chain");
                    }
                    cur = self.build_neg(c, f, cur, &cov)?;
                }
                CondElem::Ncc(cs) => {
                    if cur == ROOT {
                        return self.err("a conjunctive negation cannot start a chain");
                    }
                    cur = self.build_ncc(cs, f, cur, &cov)?;
                }
            }
        }
        Ok((cur, cov))
    }
}

/// Compile one production into `net` (a monolithic network or a session
/// overlay), appending nodes and returning
/// `(p_node, pos_slots, new_two_input, shared_two_input)`. On error the
/// target is left with partially appended nodes — the caller rolls back.
///
/// `reuse_idx` lets a reorganization recompile an existing production
/// under its current index (the new P node fires into the same conflict-set
/// slot); `None` allocates the next free index as usual.
pub(crate) fn build_production<T: BuildTarget>(
    net: &mut T,
    prod: &Arc<Production>,
    org: &NetworkOrg,
    reuse_idx: Option<u32>,
) -> Result<(NodeId, Vec<u16>, u32, u32), BuildError> {
    // Flat condition indexing.
    let mut flat_base = Vec::with_capacity(prod.ces.len());
    let mut flat_of_pos = Vec::new();
    let mut f: u16 = 0;
    for ce in &prod.ces {
        flat_base.push(f);
        if ce.is_pos() {
            flat_of_pos.push(f);
        }
        f += ce.conds().len() as u16;
    }
    let prod_idx = reuse_idx.unwrap_or_else(|| net.next_prod_index());
    let mut b = Builder {
        prod_name: prod.name,
        prod: prod.as_ref(),
        net,
        flat_of_pos,
        flat_base,
        locals: FxHashMap::default(),
        new_two: 0,
        shared_two: 0,
    };

    let (cur, cov) = match org {
            NetworkOrg::Linear => {
                let ces: Vec<(usize, &CondElem)> = prod.ces.iter().enumerate().collect();
                b.build_chain(&ces, ROOT, Vec::new())?
            }
            NetworkOrg::Bilinear(groups) => {
                // Validate: groups partition 0..ces.len(), group 0 nonempty
                // and starting with a positive CE.
                let mut seen = vec![false; prod.ces.len()];
                for g in groups {
                    for &i in g {
                        if i >= prod.ces.len() || seen[i] {
                            return b.err("bilinear groups must partition the CE list");
                        }
                        seen[i] = true;
                    }
                }
                if !seen.iter().all(|&s| s) || groups.is_empty() || groups[0].is_empty() {
                    return b.err("bilinear groups must partition the CE list");
                }
                if !prod.ces[groups[0][0]].is_pos() {
                    return b.err("bilinear group 0 must start with a positive CE");
                }
                let g0: Vec<(usize, &CondElem)> =
                    groups[0].iter().map(|&i| (i, &prod.ces[i])).collect();
                let (bottom0, cov0) = b.build_chain(&g0, ROOT, Vec::new())?;
                let k0 = cov0.len() as u16;
                let mut cur = bottom0;
                let mut cov = cov0.clone();
                for g in &groups[1..] {
                    if g.is_empty() {
                        return b.err("empty bilinear group");
                    }
                    let gc: Vec<(usize, &CondElem)> =
                        g.iter().map(|&i| (i, &prod.ces[i])).collect();
                    b.locals.clear();
                    let (bg, covg) = b.build_chain(&gc, bottom0, cov0.clone())?;
                    // Spine join: identity constraints on the shared group-0
                    // prefix (positions 0..k0 on both sides).
                    let left_key: Vec<KeyPart> = (0..k0).map(|i| KeyPart::Id { slot: i }).collect();
                    let right_key: Vec<KeyPart> = (0..k0).map(|i| KeyPart::Id { slot: i }).collect();
                    let mut merge: Vec<MergeSrc> =
                        (0..cov.len() as u16).map(MergeSrc::L).collect();
                    merge.extend((k0..covg.len() as u16).map(MergeSrc::R));
                    let mut new_cov = cov.clone();
                    new_cov.extend_from_slice(&covg[k0 as usize..]);
                    cur = b.make_node(BetaNode {
                        id: 0,
                        kind: NodeKind::Join,
                        parent: cur,
                        right: Some(RightSrc::Beta(bg)),
                        tests: vec![],
                        left_key,
                        right_key,
                        coverage: new_cov.clone(),
                        right_coverage: covg,
                        merge,
                        out_edges: vec![],
                        prod_names: vec![],
                    });
                    cov = new_cov;
                }
                (cur, cov)
            }
        };

        // Terminal production node (never shared).
        let mut pos_slots = Vec::with_capacity(prod.num_pos as usize);
        for pi in 0..prod.num_pos as usize {
            let flat = b.flat_of_pos[pi];
            match slot_of(&cov, flat) {
                Some(s) => pos_slots.push(s),
                None => return b.err("internal: positive CE missing from final coverage"),
            }
        }
        let new_two = b.new_two;
        let shared_two = b.shared_two;
        let p_node = b.net.push_node(BetaNode {
            id: 0,
            kind: NodeKind::Prod { prod: prod_idx },
            parent: cur,
            right: None,
            tests: vec![],
            left_key: vec![],
            right_key: vec![],
            coverage: cov,
            right_coverage: vec![],
            merge: vec![],
            out_edges: vec![],
            prod_names: vec![prod.name],
        });
        Ok((p_node, pos_slots, new_two, shared_two))
}

impl ReteNetwork {
    /// Compile `prod` into the network with the given organization.
    ///
    /// May be called at any quiescent point, including at run time (Soar's
    /// chunking); run [`crate::update::seed_update`] afterwards to fill the
    /// new nodes' memories. On error the network is rolled back unchanged.
    pub fn add_production(
        &mut self,
        prod: Arc<Production>,
        org: NetworkOrg,
    ) -> Result<AddResult, BuildError> {
        let first_new = self.betas.len() as NodeId;
        match build_production(self, &prod, &org, None) {
            Ok((p_node, pos_slots, new_two, shared_two)) => {
                let prod_idx = self.prods.len() as u32;
                self.prods.push(ProdInfo {
                    production: prod,
                    p_node,
                    pos_slots,
                    first_new,
                    new_two_input: new_two,
                    shared_two_input: shared_two,
                    org,
                });
                Ok(AddResult {
                    prod_idx,
                    first_new,
                    new_two_input: new_two,
                    shared_two_input: shared_two,
                    p_node,
                })
            }
            Err(e) => {
                self.rollback(first_new);
                Err(e)
            }
        }
    }

    /// Recompile production `prod_idx` with a new organization, reusing its
    /// production index. The old chain is untouched (the §5.2 state update
    /// reads its boundary memories); commit with
    /// [`ReteNetwork::reorg_commit`] once the update has run. On error the
    /// network is rolled back unchanged.
    pub fn reorg_build(
        &mut self,
        prod_idx: u32,
        org: NetworkOrg,
    ) -> Result<crate::view::ReorgBuild, BuildError> {
        let Some(info) = self.prods.get(prod_idx as usize) else {
            return Err(BuildError(format!("no production {prod_idx} to reorganize")));
        };
        let prod = info.production.clone();
        let first_new = self.betas.len() as NodeId;
        match build_production(self, &prod, &org, Some(prod_idx)) {
            Ok((p_node, pos_slots, new_two, shared_two)) => Ok(crate::view::ReorgBuild {
                prod_idx,
                org,
                first_new,
                p_node,
                pos_slots,
                new_two_input: new_two,
                shared_two_input: shared_two,
            }),
            Err(e) => {
                self.rollback(first_new);
                Err(e)
            }
        }
    }

    /// Commit a reorganization: swap the production's bookkeeping to the
    /// replacement subnetwork, strip its name from the old chain, and
    /// physically unplug every old-chain node no production references
    /// anymore (retired to the inert pool; ids stay allocated so the
    /// monotone-id invariant of §5.2 holds). Returns the retired ids,
    /// sorted — the caller purges their token memories.
    pub fn reorg_commit(&mut self, rb: crate::view::ReorgBuild) -> Vec<NodeId> {
        use crate::view::chain_ancestors;
        let name = self.prods[rb.prod_idx as usize].production.name;
        let old_p = self.prods[rb.prod_idx as usize].p_node;
        let old_chain = chain_ancestors(self, old_p);
        let new_chain = chain_ancestors(self, rb.p_node);
        let info = &mut self.prods[rb.prod_idx as usize];
        info.p_node = rb.p_node;
        info.pos_slots = rb.pos_slots;
        info.first_new = rb.first_new;
        info.new_two_input = rb.new_two_input;
        info.shared_two_input = rb.shared_two_input;
        info.org = rb.org;
        // Old-chain nodes also on the new chain (the shared prefix) keep the
        // name; elsewhere the name comes off, and a node nobody references
        // anymore retires. `old_chain` is sorted, so `retired` is too.
        let mut retired: Vec<NodeId> = Vec::new();
        for &id in &old_chain {
            if new_chain.binary_search(&id).is_ok() {
                continue;
            }
            let n = &mut self.betas[id as usize];
            n.prod_names.retain(|&s| s != name);
            if n.prod_names.is_empty() {
                retired.push(id);
            }
        }
        if retired.is_empty() {
            return retired;
        }
        // Physically unplug the pool: no surviving successor list, alpha
        // successor, or sharing signature points at a retired node. (A
        // retired node's own children are always retired too — a live child
        // would put the node on a live production's chain — so their edge
        // lists empty out here as well.)
        for n in &mut self.betas {
            if !n.out_edges.is_empty() {
                n.out_edges.retain(|&(c, _)| retired.binary_search(&c).is_err());
            }
        }
        for m in 0..self.alpha.len() {
            let mem = crate::alpha::AlphaMemId(m as u32);
            if self
                .alpha
                .get(mem)
                .successors
                .iter()
                .any(|&(c, _)| retired.binary_search(&c).is_ok())
            {
                let keep: Vec<_> = self
                    .alpha
                    .get(mem)
                    .successors
                    .iter()
                    .copied()
                    .filter(|&(c, _)| retired.binary_search(&c).is_err())
                    .collect();
                self.alpha_set_successors(mem, keep);
            }
        }
        self.sig_index.retain(|_, &mut id| retired.binary_search(&id).is_err());
        self.retired_pool.extend_from_slice(&retired);
        self.retired_pool.sort_unstable();
        #[cfg(debug_assertions)]
        self.alpha.validate_index().expect("alpha index consistent after reorg commit");
        retired
    }

    /// Undo a failed addition: drop nodes `>= first_new` and all edges,
    /// signatures and alpha successors pointing at them.
    fn rollback(&mut self, first_new: NodeId) {
        self.betas.truncate(first_new as usize);
        for n in &mut self.betas {
            n.out_edges.retain(|&(c, _)| c < first_new);
        }
        self.sig_index.retain(|_, &mut id| id < first_new);
        for m in 0..self.alpha.len() {
            let mem = crate::alpha::AlphaMemId(m as u32);
            // Rebuild successor lists without dangling targets.
            let keep: Vec<_> = self
                .alpha
                .get(mem)
                .successors
                .iter()
                .copied()
                .filter(|&(c, _)| c < first_new)
                .collect();
            self.alpha_set_successors(mem, keep);
        }
        // Note: alpha memories created by the failed build are left in place
        // with no successors; they are inert and will be reused if the same
        // tests appear again. They stay spliced into the discrimination
        // index (routing to a memory with no successors emits nothing), so
        // rollback requires no index surgery.
        #[cfg(debug_assertions)]
        self.alpha.validate_index().expect("alpha index consistent after rollback");
    }

    fn alpha_set_successors(
        &mut self,
        mem: crate::alpha::AlphaMemId,
        succ: Vec<(NodeId, Side)>,
    ) {
        // Small helper living here to keep AlphaNet's API minimal.
        let m = &mut self.alpha_mems_mut()[mem.0 as usize];
        m.successors = succ;
    }
}

use crate::node::Side;

impl ReteNetwork {
    pub(crate) fn alpha_mems_mut(&mut self) -> &mut [crate::alpha::AlphaMem] {
        self.alpha.mems_mut()
    }
}

#[cfg(test)]
mod tests {
    use crate::network::{NetworkOrg, ReteNetwork};
    use psme_ops::{parse_production, ClassRegistry};
    use std::sync::Arc;

    fn reg() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.declare_str("a", &["x", "y"]);
        r.declare_str("b", &["x", "y"]);
        r
    }

    #[test]
    fn invalid_bilinear_groups_roll_back_cleanly() {
        let mut r = reg();
        let mut net = ReteNetwork::new();
        let ok = parse_production("(p keep (a ^x 1) --> (halt))", &mut r).unwrap();
        net.add_production(Arc::new(ok), NetworkOrg::Linear).unwrap();
        let nodes_before = net.num_nodes();
        let sigs_before = net.sig_index.len();

        let p = parse_production("(p bad (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();
        // Not a partition: CE 1 appears twice.
        let err = net
            .add_production(Arc::new(p.clone()), NetworkOrg::Bilinear(vec![vec![0], vec![1, 1]]))
            .unwrap_err();
        assert!(err.0.contains("partition"), "{err}");
        assert_eq!(net.num_nodes(), nodes_before, "rollback removed new nodes");
        assert_eq!(net.sig_index.len(), sigs_before);
        assert_eq!(net.prods.len(), 1);
        // Alpha successor lists contain no dangling node ids.
        for m in net.alpha.mems() {
            for &(c, _) in &m.successors {
                assert!((c as usize) < net.num_nodes());
            }
        }
        // The same production still compiles fine linearly afterwards.
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
    }

    #[test]
    fn cross_chain_variable_dependency_rejected() {
        let mut r = reg();
        let mut net = ReteNetwork::new();
        // <v> is bound in CE1 (group 1) and used in CE2 (group 2):
        // invalid grouping, caught at compile time.
        let p = parse_production(
            "(p dep (a ^x 1) (a ^y <v>) (b ^x <v>) --> (halt))",
            &mut r,
        )
        .unwrap();
        let err = net
            .add_production(
                Arc::new(p),
                NetworkOrg::Bilinear(vec![vec![0], vec![1], vec![2]]),
            )
            .unwrap_err();
        assert!(err.0.contains("bilinear"), "{err}");
    }

    #[test]
    fn group_zero_must_start_positive() {
        let mut r = reg();
        let mut net = ReteNetwork::new();
        let p = parse_production("(p neg2 (a ^x 1) -(b ^x 1) --> (halt))", &mut r).unwrap();
        let err = net
            .add_production(Arc::new(p), NetworkOrg::Bilinear(vec![vec![1], vec![0]]))
            .unwrap_err();
        assert!(err.0.contains("positive"), "{err}");
    }

    #[test]
    fn identical_productions_share_everything_but_p_nodes() {
        let mut r = reg();
        let mut net = ReteNetwork::new();
        let p1 = parse_production("(p same1 (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();
        let p2 = parse_production("(p same2 (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();
        let r1 = net.add_production(Arc::new(p1), NetworkOrg::Linear).unwrap();
        let r2 = net.add_production(Arc::new(p2), NetworkOrg::Linear).unwrap();
        assert_eq!(r1.shared_two_input, 0);
        assert_eq!(r2.shared_two_input, 2, "both joins shared");
        assert_eq!(r2.new_two_input, 0);
        assert_ne!(r1.p_node, r2.p_node, "P nodes never shared");
    }

    #[test]
    fn new_node_ids_strictly_increase() {
        // §5.2's key property: "a newly added node is always assigned an ID
        // greater than any other existing node in the network".
        let mut r = reg();
        let mut net = ReteNetwork::new();
        let mut last_max = 0;
        for i in 0..5 {
            let p = parse_production(
                &format!("(p p{i} (a ^x {i}) (b ^y {i}) --> (halt))"),
                &mut r,
            )
            .unwrap();
            let res = net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
            assert!(res.first_new as usize >= last_max);
            last_max = net.num_nodes();
        }
    }
}
