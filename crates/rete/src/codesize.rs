//! Code-size and compile-time models (Tables 5-1 and 5-2).
//!
//! PSM-E generates NS32032 machine code for every node; the paper reports
//! ~7.9–15.5 KB per chunk and 219–304 bytes per two-input node with inline
//! expansion, or "15–20 bytes per two-input node" if calls were closed
//! coded. We do not generate machine code — the Rust analogue is the node
//! record plus its successor splice — so sizes are reported through this
//! documented model, calibrated to the paper's numbers, and compile *time*
//! in simulated NS32032 microseconds is proportional to the bytes emitted
//! plus the sharing search.

use crate::network::ReteNetwork;
use crate::node::{NodeId, NodeKind};

/// Code-generation style.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CodegenStyle {
    /// Inline-expanded procedures, as measured in Table 5-1.
    #[default]
    Inline,
    /// Closed-coded calls (the paper's projected 15–20 B/node alternative).
    Closed,
}

/// The byte-cost model.
#[derive(Clone, Copy, Debug)]
pub struct CodeSizeModel {
    /// Generation style.
    pub style: CodegenStyle,
    /// Base bytes per two-input node (inline).
    pub two_input_base: u64,
    /// Bytes per non-equality join test.
    pub per_test: u64,
    /// Bytes per hash-key part (equality binding).
    pub per_key_part: u64,
    /// Bytes per P node.
    pub prod_node: u64,
    /// Bytes per constant test in the alpha network.
    pub per_const_test: u64,
    /// Fixed linkage overhead per production (jumptable splices, entry stubs).
    pub linkage: u64,
}

impl Default for CodeSizeModel {
    fn default() -> CodeSizeModel {
        CodeSizeModel {
            style: CodegenStyle::Inline,
            two_input_base: 178,
            per_test: 30,
            per_key_part: 26,
            prod_node: 120,
            per_const_test: 24,
            linkage: 600,
        }
    }
}

impl CodeSizeModel {
    /// The closed-coded variant (Table 5-1's discussion: ~15–20 B/node).
    pub fn closed() -> CodeSizeModel {
        CodeSizeModel {
            style: CodegenStyle::Closed,
            two_input_base: 14,
            per_test: 2,
            per_key_part: 2,
            prod_node: 12,
            per_const_test: 4,
            linkage: 120,
        }
    }

    /// Bytes for one node.
    pub fn node_bytes(&self, net: &ReteNetwork, id: NodeId) -> u64 {
        let n = net.node(id);
        match n.kind {
            NodeKind::Root => 0,
            NodeKind::Prod { .. } => self.prod_node,
            NodeKind::Join | NodeKind::Neg => {
                self.two_input_base
                    + self.per_test * n.tests.len() as u64
                    + self.per_key_part * (n.left_key.len() + n.right_key.len()) as u64
            }
        }
    }
}

/// Code-size accounting for one production addition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProdCodeSize {
    /// Total bytes generated (new nodes only — shared nodes cost nothing).
    pub total_bytes: u64,
    /// Newly generated two-input nodes.
    pub new_two_input: u64,
    /// Average bytes per newly generated two-input node.
    pub bytes_per_two_input: u64,
}

/// Compute the generated code size for the node range `first_new..` created
/// by one production addition.
pub fn code_size(net: &ReteNetwork, first_new: NodeId, model: &CodeSizeModel) -> ProdCodeSize {
    let mut total = model.linkage;
    let mut two = 0u64;
    let mut two_bytes = 0u64;
    for id in first_new..net.num_nodes() as NodeId {
        let b = model.node_bytes(net, id);
        total += b;
        if net.node(id).is_two_input() {
            two += 1;
            two_bytes += b;
        }
    }
    ProdCodeSize {
        total_bytes: total,
        new_two_input: two,
        bytes_per_two_input: two_bytes.checked_div(two).unwrap_or(0),
    }
}

/// Simulated NS32032 compile time for `bytes` of generated code plus a
/// sharing search over `searched_nodes` candidates, in microseconds.
///
/// Calibration: Table 5-2 reports ≈1.2 s per eight-puzzle chunk (23.7 s /
/// 20 chunks) for ≈7.9 KB of code → ≈145 µs per byte on the 0.75-MIPS
/// NS32032 (~110 instructions per emitted byte: instruction selection,
/// operand encoding, symbol resolution).
pub fn compile_time_us(bytes: u64, searched_nodes: u64) -> u64 {
    bytes * 145 + searched_nodes * 40
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkOrg;
    use psme_ops::{parse_program, ClassRegistry};
    use std::sync::Arc;

    fn build_net(src: &str) -> ReteNetwork {
        let mut r = ClassRegistry::new();
        let prods = parse_program(src, &mut r).unwrap();
        let mut net = ReteNetwork::new();
        for p in prods {
            net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        }
        net
    }

    #[test]
    fn inline_two_input_bytes_in_paper_range() {
        let net = build_net(
            "(literalize goal id state op)
             (p p1 (goal ^id <g> ^state <s>) (goal ^id <s> ^op <o>) (goal ^id <o>) --> (halt))",
        );
        let cs = code_size(&net, 1, &CodeSizeModel::default());
        assert_eq!(cs.new_two_input, 3);
        // Table 5-1 reports 219–304 bytes per two-input node.
        assert!(
            (180..=330).contains(&cs.bytes_per_two_input),
            "bytes/2-input = {}",
            cs.bytes_per_two_input
        );
    }

    #[test]
    fn closed_model_is_much_smaller() {
        let net = build_net(
            "(literalize goal id state op)
             (p p1 (goal ^id <g> ^state <s>) (goal ^id <s>) --> (halt))",
        );
        let inline = code_size(&net, 1, &CodeSizeModel::default());
        let closed = code_size(&net, 1, &CodeSizeModel::closed());
        assert!(closed.total_bytes * 5 < inline.total_bytes);
        assert!((10..=22).contains(&closed.bytes_per_two_input));
    }

    #[test]
    fn shared_nodes_cost_nothing() {
        let mut r = ClassRegistry::new();
        let prods = parse_program(
            "(literalize goal id state op)
             (p p1 (goal ^id <g> ^state <s>) (goal ^id <s> ^op a) --> (halt))
             (p p2 (goal ^id <g> ^state <s>) (goal ^id <s> ^op a) (goal ^op b) --> (halt))",
            &mut r,
        )
        .unwrap();
        let mut net = ReteNetwork::new();
        let r1 = net.add_production(Arc::new(prods[0].clone()), NetworkOrg::Linear).unwrap();
        let size1 = code_size(&net, r1.first_new, &CodeSizeModel::default());
        let r2 = net.add_production(Arc::new(prods[1].clone()), NetworkOrg::Linear).unwrap();
        let size2 = code_size(&net, r2.first_new, &CodeSizeModel::default());
        // p2 shares p1's two joins; it only pays for one new join + P node.
        assert_eq!(r2.shared_two_input, 2);
        assert_eq!(size2.new_two_input, 1);
        assert!(size2.total_bytes < size1.total_bytes);
    }

    #[test]
    fn compile_time_scales_with_bytes() {
        assert!(compile_time_us(8_000, 100) > compile_time_us(4_000, 100));
        // ≈8 KB chunk ≈ 1.2 simulated seconds (Table 5-2 calibration).
        let t = compile_time_us(8_000, 50);
        assert!((900_000..1_500_000).contains(&t), "t = {t} µs");
    }
}
