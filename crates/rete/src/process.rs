//! Node-activation processing — the semantics shared by the serial engine
//! and the PSM-E parallel engine.
//!
//! "A node activation consists of the address of the code for a node in the
//! RETE network and an input token for that node" (§2.3). Here an
//! [`Activation`] carries the node id, the arriving side, the token, and a
//! signed *delta* (+1 add / −1 delete — the token's add/delete flag,
//! generalized to weights so that out-of-order parallel delivery is safe;
//! see `memory.rs`).
//!
//! The critical section per two-input activation — insert own token, scan
//! the opposite bucket — runs under the memory-line lock, exactly the
//! locking discipline the paper describes (§6.1). Child activations are
//! emitted after the lock is released.
//!
//! The opposite-bucket scan has two modes, selected by
//! [`MemoryTable::use_index`]:
//!
//! * **indexed** (default): the key's hash is computed once per activation,
//!   the scan is bounded to the destination node's run within the line, and
//!   entries are rejected on hash inequality (`hash_rejects`) before any
//!   structural [`Key`] compare;
//! * **reference**: the pre-overhaul whole-line scan with structural
//!   compares — the differential oracle. Non-candidate entries it filters
//!   by node id are counted as `skipped`.
//!
//! `scanned` counts same-node candidates only, and is identical in both
//! modes — so indexed and reference runs produce bit-identical traces apart
//! from the `hash_rejects`/`skipped` cost columns.

use crate::memory::{key_hash, Key, KeyElem, MemoryTable};
use crate::node::{BetaNode, KeyPart, MergeSrc, NodeId, NodeKind, Side, ROOT};
use crate::token::{Token, WmeStore};
use crate::view::ReteView;
use psme_ops::WmeId;

/// One unit of match work: a token arriving at a node input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Activation {
    /// Destination node.
    pub node: NodeId,
    /// Which input.
    pub side: Side,
    /// The arriving token.
    pub token: Token,
    /// Signed weight: +1 = add, −1 = delete.
    pub delta: i32,
}

/// A conflict-set change emitted by a P node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsChange {
    /// Production index in the network.
    pub prod: u32,
    /// The full token (coverage = the P node's coverage).
    pub token: Token,
    /// Signed weight.
    pub delta: i32,
}

/// Cost-relevant counters from processing one activation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActStats {
    /// Opposite-memory candidate entries examined (same destination node).
    pub scanned: u32,
    /// Candidates rejected by the one-word hash compare before any
    /// structural key compare (indexed probes only; 0 in reference mode).
    pub hash_rejects: u32,
    /// Co-hashed entries of *other* nodes traversed by the reference
    /// whole-line scan (0 when the per-node index is on — the run bounds
    /// never visit them).
    pub skipped: u32,
    /// Child activations emitted.
    pub emitted: u32,
    /// Memory line touched (two-input and P nodes).
    pub line: Option<u32>,
    /// Spins while acquiring the line lock.
    pub spins: u64,
    /// Line-lock acquisitions this activation paid for: 1 standalone, 1 for
    /// the first activation of a batched same-line drain, 0 for the rest of
    /// the batch (they ride the first acquisition).
    pub acquires: u32,
}

/// Reusable per-worker scratch for [`process_beta_scratch`]: the match /
/// transition buffer survives across activations so the steady state
/// allocates nothing per activation.
#[derive(Default, Debug)]
pub struct BetaScratch {
    matches: Vec<(Token, i32)>,
    posts: Vec<(Post, ActStats)>,
}

/// Compute a memory key for `token` under `spec` — inline (allocation-free)
/// for keys of up to [`crate::memory::KEY_INLINE`] elements.
#[inline]
pub fn make_key(spec: &[KeyPart], token: &Token, store: &WmeStore) -> Key {
    Key::build(
        spec.len(),
        spec.iter().map(|p| match *p {
            KeyPart::Val { slot, field } => KeyElem::V(store.value(token.slot(slot), field)),
            KeyPart::Id { slot } => KeyElem::W(token.slot(slot)),
        }),
    )
}

/// Evaluate the non-equality consistency tests between a left token and a
/// right token.
///
/// Operand order: a test `^field PRED <var>` in a CE means
/// `new-wme.field PRED bound-value`, i.e. the *right* (arriving CE) side is
/// the left operand of the predicate.
#[inline]
fn tests_pass(node: &BetaNode, left: &Token, right: &Token, store: &WmeStore) -> bool {
    node.tests.iter().all(|t| {
        let lv = store.value(left.slot(t.left_slot), t.left_field);
        let rv = store.value(right.slot(t.right_slot), t.right_field);
        t.pred.eval(rv, lv)
    })
}

/// Assemble a join's output token (one allocation: the merge spec's exact
/// size lets the token buffer be filled directly).
#[inline]
fn merge_token(node: &BetaNode, left: &Token, right: &Token) -> Token {
    Token::collect(node.merge.iter().map(|m| match *m {
        MergeSrc::L(s) => left.slot(s),
        MergeSrc::R(s) => right.slot(s),
    }))
}

/// Process one beta activation (convenience wrapper that brings its own
/// scratch; hot loops should hold a [`BetaScratch`] and call
/// [`process_beta_scratch`]).
pub fn process_beta<N: ReteView + ?Sized>(
    net: &N,
    mem: &MemoryTable,
    store: &WmeStore,
    act: &Activation,
    min_node: NodeId,
    emit: &mut dyn FnMut(Activation),
    cs_emit: &mut dyn FnMut(CsChange),
) -> ActStats {
    let mut scratch = BetaScratch::default();
    process_beta_scratch(net, mem, store, act, min_node, &mut scratch, emit, cs_emit)
}

/// Deferred after-lock work produced by [`beta_locked`]: what to emit once
/// the line guard is dropped. Match/transition tokens live in the shared
/// scratch buffer; `from` is the start of this activation's slice.
#[derive(Clone, Copy, Debug)]
enum Post {
    /// Root activation — nothing to do.
    None,
    /// P node: one conflict-set change for the input token.
    Cs { prod: u32 },
    /// Join: merge + fan out `matches[from..to]` (side decides merge order).
    Join { from: usize, to: usize },
    /// Neg left: fan the input token out iff it arrived unblocked.
    NegGate { fire: bool },
    /// Neg right: fan out the blocked/unblocked transitions in
    /// `matches[from..to]`.
    NegTransitions { from: usize, to: usize },
}

/// A beta activation staged for batched processing: key, hash, and
/// destination line are computed up front (outside any lock) so the caller
/// can group same-line activations and drain each group under a single
/// acquisition via [`process_beta_batch`].
#[derive(Clone, Debug)]
pub struct PlannedBeta {
    /// The activation.
    pub act: Activation,
    /// Destination memory line; `None` only for root-kind activations,
    /// which touch no memory.
    pub line: Option<u32>,
    key: Key,
    khash: u64,
}

/// Stage `act` for batched processing: compute its memory key, hash, and
/// destination line without taking any lock.
pub fn plan_beta<N: ReteView + ?Sized>(
    net: &N,
    mem: &MemoryTable,
    store: &WmeStore,
    act: Activation,
) -> PlannedBeta {
    let (key, khash, line) = plan_parts(net, mem, store, &act);
    PlannedBeta { act, line, key, khash }
}

fn plan_parts<N: ReteView + ?Sized>(
    net: &N,
    mem: &MemoryTable,
    store: &WmeStore,
    act: &Activation,
) -> (Key, u64, Option<u32>) {
    let node = net.node(act.node);
    let key = match node.kind {
        NodeKind::Root => return (Key::empty(), 0, None),
        NodeKind::Prod { .. } => Key::empty(),
        NodeKind::Join | NodeKind::Neg => match act.side {
            Side::Left => make_key(&node.left_key, &act.token, store),
            Side::Right => make_key(&node.right_key, &act.token, store),
        },
    };
    let khash = key_hash(&key);
    let line = mem.line_of_hash(act.node, khash);
    (key, khash, Some(line))
}

/// The critical section of one beta activation: mutate the line's memories
/// and collect match/transition tokens into `matches`. Runs under the line
/// lock; emission is deferred to [`beta_post`] via the returned [`Post`].
#[allow(clippy::too_many_arguments)]
fn beta_locked<N: ReteView + ?Sized>(
    net: &N,
    g: &mut crate::memory::LineData,
    store: &WmeStore,
    act: &Activation,
    key: &Key,
    khash: u64,
    use_index: bool,
    matches: &mut Vec<(Token, i32)>,
    stats: &mut ActStats,
) -> Post {
    let node = net.node(act.node);
    match node.kind {
        NodeKind::Root => Post::None,
        NodeKind::Prod { prod } => {
            // P nodes store their input tokens (so that a later chunk
            // sharing this whole chain can enumerate the parent's outputs)
            // and update the conflict set.
            g.left_accesses += 1;
            g.upsert_left(act.node, key, khash, &act.token, act.delta, 0, use_index);
            Post::Cs { prod }
        }
        NodeKind::Join => match act.side {
            Side::Left => {
                g.left_accesses += 1;
                g.upsert_left(act.node, key, khash, &act.token, act.delta, 0, use_index);
                let from = matches.len();
                let (s, e) = if use_index { g.right_run(act.node) } else { (0, g.right.len()) };
                for en in &g.right[s..e] {
                    if en.node != act.node {
                        stats.skipped += 1;
                        continue;
                    }
                    stats.scanned += 1;
                    if en.weight == 0 {
                        continue;
                    }
                    if use_index && en.hash != khash {
                        stats.hash_rejects += 1;
                        continue;
                    }
                    if en.key == *key && tests_pass(node, &act.token, &en.token, store) {
                        matches.push((en.token.clone(), en.weight));
                    }
                }
                Post::Join { from, to: matches.len() }
            }
            Side::Right => {
                g.right_accesses += 1;
                g.upsert_right(act.node, key, khash, &act.token, act.delta, use_index);
                let from = matches.len();
                if node.parent == ROOT {
                    // The root's single output is the weight-1 empty token.
                    matches.push((Token::empty(), 1));
                    stats.scanned += 1;
                } else {
                    let (s, e) = if use_index { g.left_run(act.node) } else { (0, g.left.len()) };
                    for en in &g.left[s..e] {
                        if en.node != act.node {
                            stats.skipped += 1;
                            continue;
                        }
                        stats.scanned += 1;
                        if en.weight == 0 {
                            continue;
                        }
                        if use_index && en.hash != khash {
                            stats.hash_rejects += 1;
                            continue;
                        }
                        if en.key == *key && tests_pass(node, &en.token, &act.token, store) {
                            matches.push((en.token.clone(), en.weight));
                        }
                    }
                }
                Post::Join { from, to: matches.len() }
            }
        },
        NodeKind::Neg => match act.side {
            Side::Left => {
                g.left_accesses += 1;
                // Find or create the entry; a fresh entry computes its
                // not-counter m by scanning the right bucket.
                let (ls, le) = g.left_run(act.node);
                let idx = (ls..le).find(|&i| {
                    let en = &g.left[i];
                    (!use_index || en.hash == khash) && en.token == act.token
                });
                let m_now = match idx {
                    Some(i) => {
                        g.left[i].weight += act.delta;
                        let m = g.left[i].m;
                        if g.left[i].weight == 0 {
                            g.left.remove(i);
                        }
                        m
                    }
                    None => {
                        let mut m = 0i32;
                        let (s, e) =
                            if use_index { g.right_run(act.node) } else { (0, g.right.len()) };
                        for en in &g.right[s..e] {
                            if en.node != act.node {
                                stats.skipped += 1;
                                continue;
                            }
                            stats.scanned += 1;
                            if use_index && en.hash != khash {
                                stats.hash_rejects += 1;
                                continue;
                            }
                            if en.key == *key && tests_pass(node, &act.token, &en.token, store) {
                                m += en.weight;
                            }
                        }
                        g.left.insert(
                            le,
                            crate::memory::LeftEntry {
                                node: act.node,
                                hash: khash,
                                key: key.clone(),
                                token: act.token.clone(),
                                weight: act.delta,
                                m,
                            },
                        );
                        m
                    }
                };
                Post::NegGate { fire: m_now == 0 }
            }
            Side::Right => {
                g.right_accesses += 1;
                g.upsert_right(act.node, key, khash, &act.token, act.delta, use_index);
                // Adjust the not-counters of matching left tokens; collect
                // the blocked/unblocked transitions.
                let from = matches.len();
                let (s, e) = if use_index { g.left_run(act.node) } else { (0, g.left.len()) };
                for i in s..e {
                    let en = &g.left[i];
                    if en.node != act.node {
                        stats.skipped += 1;
                        continue;
                    }
                    stats.scanned += 1;
                    if use_index && en.hash != khash {
                        stats.hash_rejects += 1;
                        continue;
                    }
                    if en.key == *key && tests_pass(node, &en.token, &act.token, store) {
                        let en = &mut g.left[i];
                        let m_old = en.m;
                        en.m += act.delta;
                        if m_old == 0 && en.m != 0 {
                            matches.push((en.token.clone(), -en.weight));
                        } else if m_old != 0 && en.m == 0 {
                            matches.push((en.token.clone(), en.weight));
                        }
                    }
                }
                Post::NegTransitions { from, to: matches.len() }
            }
        },
    }
}

/// The after-lock half of one beta activation: merge and fan out whatever
/// [`beta_locked`] collected. Runs with no lock held.
#[allow(clippy::too_many_arguments)]
fn beta_post<N: ReteView + ?Sized>(
    net: &N,
    act: &Activation,
    post: Post,
    matches: &[(Token, i32)],
    min_node: NodeId,
    stats: &mut ActStats,
    emit: &mut dyn FnMut(Activation),
    cs_emit: &mut dyn FnMut(CsChange),
) {
    match post {
        Post::None => {}
        Post::Cs { prod } => {
            cs_emit(CsChange { prod, token: act.token.clone(), delta: act.delta });
            stats.emitted = 1;
        }
        Post::Join { from, to } => {
            let node = net.node(act.node);
            for (t, w) in &matches[from..to] {
                let out = match act.side {
                    Side::Left => merge_token(node, &act.token, t),
                    Side::Right => merge_token(node, t, &act.token),
                };
                stats.emitted += emit_children(net, node, out, act.delta * w, min_node, emit);
            }
        }
        Post::NegGate { fire } => {
            if fire {
                let node = net.node(act.node);
                stats.emitted +=
                    emit_children(net, node, act.token.clone(), act.delta, min_node, emit);
            }
        }
        Post::NegTransitions { from, to } => {
            let node = net.node(act.node);
            for (t, d) in &matches[from..to] {
                if *d != 0 {
                    stats.emitted += emit_children(net, node, t.clone(), *d, min_node, emit);
                }
            }
        }
    }
}

/// Process one beta activation, reusing `scratch` across calls.
///
/// `min_node` filters emissions during the run-time state update (§5.2):
/// child activations targeting nodes below it are dropped. Use 0 for normal
/// matching.
#[allow(clippy::too_many_arguments)]
pub fn process_beta_scratch<N: ReteView + ?Sized>(
    net: &N,
    mem: &MemoryTable,
    store: &WmeStore,
    act: &Activation,
    min_node: NodeId,
    scratch: &mut BetaScratch,
    emit: &mut dyn FnMut(Activation),
    cs_emit: &mut dyn FnMut(CsChange),
) -> ActStats {
    let mut stats = ActStats::default();
    scratch.matches.clear();
    let (key, khash, line) = plan_parts(net, mem, store, act);
    let Some(line) = line else {
        return stats; // Root: no memory, no emission.
    };
    stats.line = Some(line);
    let (mut g, spins) = mem.lock(line);
    stats.spins = spins;
    stats.acquires = 1;
    mem.touch(line);
    let post =
        beta_locked(net, &mut g, store, act, &key, khash, mem.use_index, &mut scratch.matches, &mut stats);
    drop(g);
    beta_post(net, act, post, &scratch.matches, min_node, &mut stats, emit, cs_emit);
    scratch.matches.clear();
    stats
}

/// Drain a group of same-line planned activations under a single line-lock
/// acquisition.
///
/// Processing order within the group is the slice order, and the result is
/// identical to processing each activation alone (each one's critical
/// section sees all earlier ones' memory updates, exactly as under separate
/// acquisitions); only the lock overhead is amortized. The first activation
/// is charged `acquires = 1` plus the acquisition spins; the rest ride the
/// same hold with `acquires = 0`. Emission for every activation happens
/// after the single release. `on_stats` is called once per activation so
/// callers keep per-task accounting.
///
/// A group whose `line` is `None` (root-kind activations) takes no lock and
/// degenerates to per-activation processing.
#[allow(clippy::too_many_arguments)]
pub fn process_beta_batch<N: ReteView + ?Sized>(
    net: &N,
    mem: &MemoryTable,
    store: &WmeStore,
    group: &[PlannedBeta],
    min_node: NodeId,
    scratch: &mut BetaScratch,
    emit: &mut dyn FnMut(Activation),
    cs_emit: &mut dyn FnMut(CsChange),
    on_stats: &mut dyn FnMut(&Activation, &ActStats),
) {
    let Some(first) = group.first() else { return };
    let Some(line) = first.line else {
        for p in group {
            let s = process_beta_scratch(net, mem, store, &p.act, min_node, scratch, emit, cs_emit);
            on_stats(&p.act, &s);
        }
        return;
    };
    debug_assert!(
        group.iter().all(|p| p.line == Some(line)),
        "process_beta_batch group must share one destination line"
    );
    scratch.matches.clear();
    scratch.posts.clear();
    let use_index = mem.use_index;
    let (mut g, spins) = mem.lock(line);
    mem.touch(line);
    for (i, p) in group.iter().enumerate() {
        let mut stats = ActStats { line: Some(line), ..ActStats::default() };
        if i == 0 {
            stats.spins = spins;
            stats.acquires = 1;
        }
        let post = beta_locked(
            net,
            &mut g,
            store,
            &p.act,
            &p.key,
            p.khash,
            use_index,
            &mut scratch.matches,
            &mut stats,
        );
        scratch.posts.push((post, stats));
    }
    drop(g);
    let mut posts = std::mem::take(&mut scratch.posts);
    for (p, (post, stats)) in group.iter().zip(posts.iter_mut()) {
        beta_post(net, &p.act, *post, &scratch.matches, min_node, stats, emit, cs_emit);
        on_stats(&p.act, stats);
    }
    posts.clear();
    scratch.posts = posts;
    scratch.matches.clear();
}

fn emit_children<N: ReteView + ?Sized>(
    net: &N,
    node: &BetaNode,
    token: Token,
    delta: i32,
    min_node: NodeId,
    emit: &mut dyn FnMut(Activation),
) -> u32 {
    if delta == 0 {
        return 0;
    }
    let mut n = 0;
    // A node's own edges first, then any overlay splices: together these
    // reproduce the monolithic successor append order (see `session.rs`).
    // `edge_live` masks edges into a session's retired pool (constant true
    // on a monolithic network, which unplugs retired nodes physically).
    for &(child, side) in node.out_edges.iter().chain(net.extra_out_edges(node.id)) {
        if child >= min_node && net.edge_live(child) {
            emit(Activation { node: child, side, token: token.clone(), delta });
            n += 1;
        }
    }
    n
}

/// Push one wme change through the alpha network, emitting right
/// activations on every successor of every matching alpha memory.
///
/// Returns the discrimination stats (tests run, probes, candidates, tests
/// saved) and the number of activations emitted.
pub fn process_wme_change<N: ReteView + ?Sized>(
    net: &N,
    store: &WmeStore,
    wme: WmeId,
    delta: i32,
    min_node: NodeId,
    emit: &mut dyn FnMut(Activation),
) -> (crate::alpha::AlphaStats, u32) {
    // One unit token shared across the whole fan-out: the store caches it
    // per wme, so every successor (and every later alpha task for this
    // wme) takes a refcount bump instead of a fresh allocation.
    let token = store.unit_token(wme).clone();
    let w = store.get(wme).clone();
    let mut emitted = 0u32;
    let stats = net.classify_wme(&w, &mut |child, side| {
        if child >= min_node && net.edge_live(child) {
            emit(Activation { node: child, side, token: token.clone(), delta });
            emitted += 1;
        }
    });
    (stats, emitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryTable;
    use crate::network::{NetworkOrg, ReteNetwork};
    use psme_ops::{parse_production, parse_wme, ClassRegistry, Value};
    use std::sync::Arc;

    fn setup() -> (ClassRegistry, ReteNetwork, MemoryTable, WmeStore) {
        let mut r = ClassRegistry::new();
        r.declare_str("a", &["x", "y"]);
        r.declare_str("b", &["x", "y"]);
        let mut net = ReteNetwork::new();
        let p = parse_production("(p t (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        (r, net, MemoryTable::new(64), WmeStore::new())
    }

    fn drain(
        net: &ReteNetwork,
        mem: &MemoryTable,
        store: &WmeStore,
        seed: Activation,
    ) -> Vec<CsChange> {
        let mut queue = vec![seed];
        let mut cs = Vec::new();
        let mut scratch = BetaScratch::default();
        while let Some(act) = queue.pop() {
            process_beta_scratch(net, mem, store, &act, 0, &mut scratch, &mut |a| queue.push(a), &mut |c| {
                cs.push(c)
            });
        }
        cs
    }

    #[test]
    fn make_key_extracts_values_and_ids() {
        let (r, _, _, mut store) = setup();
        let (id, _) = store.add(parse_wme("(a ^x 7 ^y blue)", &r).unwrap());
        let t = Token::unit(id);
        let key = make_key(
            &[KeyPart::Val { slot: 0, field: 0 }, KeyPart::Id { slot: 0 }],
            &t,
            &store,
        );
        assert_eq!(key.elems().len(), 2);
        assert_eq!(key.elems()[0], crate::memory::KeyElem::V(Value::Int(7)));
        assert_eq!(key.elems()[1], crate::memory::KeyElem::W(id));
    }

    #[test]
    fn delete_before_add_annihilates() {
        // Counting semantics: a delete overtaking its add leaves a −1 entry
        // that the add cancels; the net conflict-set delta is zero.
        let (r, net, mem, mut store) = setup();
        let (wa, _) = store.add(parse_wme("(a ^x 1)", &r).unwrap());
        let (wb, _) = store.add(parse_wme("(b ^x 1)", &r).unwrap());
        // Add both wmes normally: one instantiation appears.
        let mut cs = Vec::new();
        for (w, d) in [(wa, 1), (wb, 1)] {
            let mut pending = Vec::new();
            process_wme_change(&net, &store, w, d, 0, &mut |a| pending.push(a));
            for a in pending {
                cs.extend(drain(&net, &mem, &store, a));
            }
        }
        let net_weight: i32 = cs.iter().map(|c| c.delta).sum();
        assert_eq!(net_weight, 1);

        // Now process the DELETE of wb before a (simulated) re-add with the
        // same token: the memory transiently holds a −1 right entry.
        let mut del_acts = Vec::new();
        process_wme_change(&net, &store, wb, -1, 0, &mut |a| del_acts.push(a));
        let mut add_acts = Vec::new();
        process_wme_change(&net, &store, wb, 1, 0, &mut |a| add_acts.push(a));
        // Deliver the add FIRST to one node and the delete first to the
        // other order — here simply: delete processed, then add.
        let mut cs2 = Vec::new();
        for a in del_acts.into_iter().chain(add_acts) {
            cs2.extend(drain(&net, &mem, &store, a));
        }
        let net2: i32 = cs2.iter().map(|c| c.delta).sum();
        assert_eq!(net2, 0, "delete+add cancel");
        mem.assert_quiescent();
    }

    #[test]
    fn min_node_filter_suppresses_old_targets() {
        let (r, net, mem, mut store) = setup();
        let (wa, _) = store.add(parse_wme("(a ^x 1)", &r).unwrap());
        let mut emitted = Vec::new();
        // Filter above every node id: nothing may be emitted.
        process_wme_change(&net, &store, wa, 1, 10_000, &mut |a| emitted.push(a));
        assert!(emitted.is_empty());
        let (stats, n) = process_wme_change(&net, &store, wa, 1, 0, &mut |_| {});
        assert!(stats.tests_run > 0);
        assert_eq!(n, 1, "one successor at the join's right input");
        let _ = mem;
    }

    #[test]
    fn root_children_join_against_implicit_empty_token() {
        let (r, net, mem, mut store) = setup();
        let (wa, _) = store.add(parse_wme("(a ^x 9)", &r).unwrap());
        let mut acts = Vec::new();
        process_wme_change(&net, &store, wa, 1, 0, &mut |a| acts.push(a));
        assert_eq!(acts.len(), 1);
        let mut emitted = Vec::new();
        let stats = process_beta(&net, &mem, &store, &acts[0], 0, &mut |a| emitted.push(a), &mut |_| {});
        // The first-level join emits a 1-wme token downstream.
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].token.len(), 1);
        assert_eq!(stats.scanned, 1, "the implicit empty token counts as one scan");
    }

    #[test]
    fn batched_drain_matches_sequential_and_charges_one_acquire_per_group() {
        // The same wme sequence processed one activation at a time vs
        // grouped by destination line and drained under single
        // acquisitions: identical net conflict-set weight and activation
        // count, but the batch path pays one acquisition per group.
        let (r, net, _, mut store) = setup();
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(store.add(parse_wme(&format!("(a ^x {i})"), &r).unwrap()).0);
            ids.push(store.add(parse_wme(&format!("(b ^x {i})"), &r).unwrap()).0);
        }
        let run = |batched: bool| {
            // One line: every node co-hashed, so each wave is one group.
            let mem = MemoryTable::new(1);
            let mut scratch = BetaScratch::default();
            let (mut cs_net, mut acquires, mut acts) = (0i32, 0u32, 0u32);
            let mut queue: Vec<Activation> = Vec::new();
            for &w in &ids {
                process_wme_change(&net, &store, w, 1, 0, &mut |a| queue.push(a));
            }
            while !queue.is_empty() {
                let wave = std::mem::take(&mut queue);
                if batched {
                    let mut planned: Vec<PlannedBeta> =
                        wave.into_iter().map(|a| plan_beta(&net, &mem, &store, a)).collect();
                    planned.sort_by_key(|p| p.line);
                    let mut i = 0;
                    while i < planned.len() {
                        let mut j = i + 1;
                        while j < planned.len() && planned[j].line == planned[i].line {
                            j += 1;
                        }
                        process_beta_batch(
                            &net,
                            &mem,
                            &store,
                            &planned[i..j],
                            0,
                            &mut scratch,
                            &mut |a| queue.push(a),
                            &mut |c| cs_net += c.delta,
                            &mut |_, s| {
                                acquires += s.acquires;
                                acts += 1;
                            },
                        );
                        i = j;
                    }
                } else {
                    for a in wave {
                        let s = process_beta_scratch(
                            &net,
                            &mem,
                            &store,
                            &a,
                            0,
                            &mut scratch,
                            &mut |x| queue.push(x),
                            &mut |c| cs_net += c.delta,
                        );
                        acquires += s.acquires;
                        acts += 1;
                    }
                }
            }
            mem.assert_quiescent();
            (cs_net, acquires, acts)
        };
        let (seq_cs, seq_acq, seq_acts) = run(false);
        let (bat_cs, bat_acq, bat_acts) = run(true);
        assert_eq!(seq_cs, bat_cs, "batched and sequential agree on the conflict set");
        assert_eq!(seq_acts, bat_acts, "same activation count either way");
        assert_eq!(seq_acq, seq_acts, "unbatched: one acquisition per activation");
        assert!(
            bat_acq * 2 <= seq_acq,
            "one-line batching must at least halve acquisitions ({bat_acq} vs {seq_acq})"
        );
    }

    #[test]
    fn indexed_and_reference_probes_agree_and_account_differently() {
        // Two memories over the same 1-line table (every node co-hashed):
        // indexed probes must emit the same matches as the reference
        // whole-line scan, with `skipped` > 0 only in reference mode and
        // `hash_rejects` > 0 only in indexed mode.
        let (r, net, _, mut store) = setup();
        for mode in [true, false] {
            let mut mem = MemoryTable::new(1);
            mem.use_index = mode;
            let mut cs = Vec::new();
            let mut stats_sum = ActStats::default();
            // Several (a, b) pairs with distinct keys: only the same-key
            // pair joins; different-key right entries are hash-rejectable.
            let mut ids = Vec::new();
            for i in 0..4 {
                ids.push(store.add(parse_wme(&format!("(a ^x {i})"), &r).unwrap()).0);
                ids.push(store.add(parse_wme(&format!("(b ^x {i})"), &r).unwrap()).0);
            }
            for &w in &ids {
                let mut pending = Vec::new();
                process_wme_change(&net, &store, w, 1, 0, &mut |a| pending.push(a));
                let mut queue = pending;
                while let Some(act) = queue.pop() {
                    let s = process_beta(&net, &mem, &store, &act, 0, &mut |a| queue.push(a), &mut |c| {
                        cs.push(c)
                    });
                    stats_sum.scanned += s.scanned;
                    stats_sum.hash_rejects += s.hash_rejects;
                    stats_sum.skipped += s.skipped;
                }
            }
            let net_weight: i32 = cs.iter().map(|c| c.delta).sum();
            assert_eq!(net_weight, 4, "one instantiation per pair (mode {mode})");
            if mode {
                assert!(stats_sum.hash_rejects > 0, "indexed probes hash-reject");
                assert_eq!(stats_sum.skipped, 0, "run bounds never visit other nodes");
            } else {
                assert_eq!(stats_sum.hash_rejects, 0, "reference scan never hash-rejects");
                assert!(stats_sum.skipped > 0, "whole-line scan traverses other nodes");
            }
            mem.assert_quiescent();
        }
    }
}
