//! Differential properties for the beta-memory overhaul: the indexed
//! probe path (hash-first rejection + per-node line runs) must be
//! observationally identical to the reference whole-line scan it replaced,
//! over arbitrary add/delete interleavings — including deletes overtaking
//! adds, Neg not-counters and NCC subnetworks — plus an exact-accounting
//! fixture for the new `hash_rejects` / `entries_skipped` counters.

use proptest::prelude::*;
use psme_rete::testgen::{random_system, GenConfig, XorShift};
use psme_rete::{
    process_beta, process_wme_change, Activation, CsChange, MatchState, MemoryTable, NetworkOrg,
    NodeId, ReteNetwork, SerialEngine, TaskKind, Token, WmeStore,
};
use std::collections::HashMap;
use std::sync::Arc;

fn build_net(sys: &psme_rete::testgen::GeneratedSystem) -> ReteNetwork {
    let mut net = ReteNetwork::new();
    for p in &sys.productions {
        net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
    }
    net
}

type NodeTokens = (NodeId, Vec<(Token, i32)>, Vec<(Token, i32)>);

/// Quiescent memory contents per node, order-normalized.
fn snapshot(net: &ReteNetwork, mem: &MemoryTable) -> Vec<NodeTokens> {
    let sort = |mut v: Vec<(Token, i32)>| {
        v.sort_by(|a, b| a.0.wmes().cmp(b.0.wmes()));
        v
    };
    (0..net.num_nodes() as NodeId)
        .map(|n| (n, sort(mem.left_tokens_of(n)), sort(mem.right_tokens_of(n))))
        .collect()
}

/// Drain a queue of seed activations through one memory, returning the net
/// conflict-set weight per (production, token).
fn drain_all(
    net: &ReteNetwork,
    mem: &MemoryTable,
    store: &WmeStore,
    seeds: &[Activation],
) -> HashMap<(u32, Token), i32> {
    let mut queue: Vec<Activation> = Vec::new();
    let mut cs: Vec<CsChange> = Vec::new();
    for seed in seeds {
        queue.push(seed.clone());
        while let Some(act) = queue.pop() {
            process_beta(net, mem, store, &act, 0, &mut |a| queue.push(a), &mut |c| cs.push(c));
        }
    }
    let mut folded: HashMap<(u32, Token), i32> = HashMap::new();
    for c in cs {
        *folded.entry((c.prod, c.token)).or_insert(0) += c.delta;
    }
    folded.retain(|_, d| *d != 0);
    folded
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Engine-level differential: a serial engine probing through the
    /// per-node index behaves bit-for-bit like one running the reference
    /// whole-line scan — same per-cycle conflict-set deltas, same
    /// instantiations, same quiescent memory contents — on 2-line tables
    /// where every node co-hashes with others.
    #[test]
    fn indexed_memory_equals_reference_scan(
        seed in 0u64..10_000,
        script in prop::collection::vec((0u8..4, 0u16..200), 1..20),
    ) {
        let sys = random_system(seed, GenConfig::default());
        let mut engines: Vec<SerialEngine> = (0..2)
            .map(|i| {
                let mut e = SerialEngine::with_memory(build_net(&sys), 2);
                e.state.mem.use_index = i == 0;
                e
            })
            .collect();
        let mut rng = XorShift::new(seed ^ 0xBEEF);
        for (op, pick) in script {
            let outs: Vec<_> = match op {
                0..=2 => {
                    let w = sys.random_wme(&mut rng);
                    engines.iter_mut().map(|e| e.apply_changes(vec![w.clone()], vec![])).collect()
                }
                _ => {
                    let alive: Vec<_> =
                        engines[0].state.store.iter_alive().map(|(id, _)| id).collect();
                    if alive.is_empty() {
                        continue;
                    }
                    let id = alive[pick as usize % alive.len()];
                    engines.iter_mut().map(|e| e.apply_changes(vec![], vec![id])).collect()
                }
            };
            prop_assert_eq!(&outs[0].cs.added, &outs[1].cs.added, "cycle adds diverge");
            prop_assert_eq!(&outs[0].cs.removed, &outs[1].cs.removed, "cycle removes diverge");
        }
        prop_assert_eq!(
            engines[0].current_instantiations(),
            engines[1].current_instantiations()
        );
        prop_assert_eq!(
            snapshot(&engines[0].net, &engines[0].state.mem),
            snapshot(&engines[1].net, &engines[1].state.mem)
        );
        for e in &engines {
            e.state.mem.assert_quiescent();
        }
    }

    /// Activation-level differential with deletes overtaking adds: both
    /// memory modes process the same shuffled interleaving of add and
    /// delete activations (so a delete can run before its add, leaving
    /// transient −1 entries) on a 1-line table and must agree on the net
    /// conflict set and on the (empty) quiescent memory. Neg not-counters
    /// and NCC subnetworks are exercised via the generator's neg/ncc CEs.
    #[test]
    fn shuffled_delete_overtakes_add(
        seed in 0u64..10_000,
        n in 2usize..8,
    ) {
        let sys = random_system(seed, GenConfig { neg_pct: 60, ncc_pct: 40, ..GenConfig::default() });
        let net = build_net(&sys);
        let mut store = WmeStore::new();
        let mut rng = XorShift::new(seed ^ 0xD00D);
        // Register n wmes; every one gets an add AND a delete seed, so the
        // net effect of the whole stream is zero.
        let mut seeds: Vec<Activation> = Vec::new();
        for _ in 0..n {
            let (id, _) = store.add(sys.random_wme(&mut rng));
            for delta in [1, -1] {
                process_wme_change(&net, &store, id, delta, 0, &mut |a| seeds.push(a));
            }
        }
        // One shuffle, shared by both modes: deletes routinely land first.
        for i in (1..seeds.len()).rev() {
            seeds.swap(i, rng.below(i + 1));
        }
        let mut results = Vec::new();
        for use_index in [true, false] {
            let mut mem = MemoryTable::new(1);
            mem.use_index = use_index;
            let cs = drain_all(&net, &mem, &store, &seeds);
            mem.assert_quiescent();
            mem.compact();
            prop_assert_eq!(snapshot(&net, &mem), snapshot(&net, &MemoryTable::new(1)),
                "add+delete pairs must annihilate (use_index={})", use_index);
            results.push(cs);
        }
        prop_assert_eq!(&results[0], &results[1], "net conflict sets diverge");
        prop_assert!(results[0].is_empty(), "balanced stream nets to zero: {:?}", results[0]);
    }

    /// Same interleaving differential, but unbalanced (only a suffix of the
    /// wmes is deleted): the two modes must agree on the surviving matches
    /// and memory contents, which are generally non-empty.
    #[test]
    fn shuffled_partial_deletes_agree(
        seed in 0u64..10_000,
        n in 2usize..8,
        del_from in 0usize..6,
    ) {
        let sys = random_system(seed, GenConfig { neg_pct: 50, ncc_pct: 30, ..GenConfig::default() });
        let net = build_net(&sys);
        let mut store = WmeStore::new();
        let mut rng = XorShift::new(seed ^ 0xCAFE);
        let mut seeds: Vec<Activation> = Vec::new();
        for i in 0..n {
            let (id, _) = store.add(sys.random_wme(&mut rng));
            process_wme_change(&net, &store, id, 1, 0, &mut |a| seeds.push(a));
            if i >= del_from.min(n - 1) {
                store.remove(id);
                process_wme_change(&net, &store, id, -1, 0, &mut |a| seeds.push(a));
            }
        }
        for i in (1..seeds.len()).rev() {
            seeds.swap(i, rng.below(i + 1));
        }
        let mut results = Vec::new();
        for use_index in [true, false] {
            let mut mem = MemoryTable::new(1);
            mem.use_index = use_index;
            let cs = drain_all(&net, &mem, &store, &seeds);
            mem.assert_quiescent();
            results.push((cs, snapshot(&net, &mem)));
        }
        prop_assert_eq!(&results[0], &results[1]);
    }
}

/// Exact accounting on a hand-built fixture: one two-join production on a
/// 1-line table, a fixed wme script, and hand-computed counter totals for
/// both memory modes (see the step-by-step derivation in the comments).
#[test]
fn exact_hash_reject_and_skip_accounting() {
    use psme_ops::{parse_production, parse_wme, ClassRegistry};
    let mut r = ClassRegistry::new();
    r.declare_str("a", &["x"]);
    r.declare_str("b", &["x"]);
    let prod = parse_production("(p t (a ^x <v>) (b ^x <v>) --> (halt))", &mut r).unwrap();

    let mut totals = Vec::new();
    for use_index in [true, false] {
        let mut net = ReteNetwork::new();
        net.add_production(Arc::new(prod.clone()), NetworkOrg::Linear).unwrap();
        let mut e = SerialEngine::with_state(net, MatchState::with_memory(1));
        e.state.mem.use_index = use_index;
        e.capture = true;
        // Step 1: a1 → J1 right (scans the implicit root token: scanned 1),
        //         emits [a1] → J2 left (right run empty: scanned 0; the
        //         reference whole-line scan traverses J1's a1 entry:
        //         skipped 1).
        e.apply_changes(vec![parse_wme("(a ^x 1)", &r).unwrap()], vec![]);
        // Step 2: b1 → J2 right (left holds J2:[a1] key=1: scanned 1,
        //         match) → P node (no scan). No other-node left entries yet.
        e.apply_changes(vec![parse_wme("(b ^x 1)", &r).unwrap()], vec![]);
        // Step 3: b2 (^x 2) → J2 right: candidate [a1] key=1 vs key=2 —
        //         scanned 1, hash-rejected when indexed; the reference scan
        //         also traverses the P node's stored token: skipped 1.
        e.apply_changes(vec![parse_wme("(b ^x 2)", &r).unwrap()], vec![]);
        // Step 4: a2 (^x 2) → J1 right (scanned 1), emits [a2] → J2 left:
        //         candidates b1 (hash-rejected when indexed) and b2
        //         (match): scanned 2; reference skips J1's {a1, a2}:
        //         skipped 2 → P node.
        e.apply_changes(vec![parse_wme("(a ^x 2)", &r).unwrap()], vec![]);

        let (mut scanned, mut rejects, mut skipped, mut prods) = (0u32, 0u32, 0u32, 0u32);
        for c in &e.trace.cycles {
            for t in &c.tasks {
                if t.kind == TaskKind::Alpha {
                    continue;
                }
                scanned += t.scanned;
                rejects += t.hash_rejects;
                skipped += t.skipped;
                if t.kind == TaskKind::Prod {
                    prods += 1;
                }
            }
        }
        assert_eq!(prods, 2, "two instantiations fire (use_index={use_index})");
        assert_eq!(scanned, 6, "candidates are mode-independent (use_index={use_index})");
        if use_index {
            assert_eq!(rejects, 2, "b2 vs [a1], then b1 vs [a2]");
            assert_eq!(skipped, 0, "run bounds never visit other nodes");
        } else {
            assert_eq!(rejects, 0, "reference scan never hash-rejects");
            assert_eq!(skipped, 4, "J1's a1 once, P's token once, J1's {{a1,a2}} once");
        }
        totals.push(e.current_instantiations());
    }
    assert_eq!(totals[0], totals[1], "both modes find the same matches");
}
