//! Property-based tests for adaptive mid-run reorganization.
//!
//! Three invariants, over randomized workloads and rebuild points:
//! the adversarial workload generator is deterministic; a bilinear rebuild
//! at *any* cycle of *any* random system is observationally invisible
//! (conflict-set deltas and the final naive-oracle conflict set never
//! change); and a rebuild that fails mid-build rolls back to exactly the
//! network it started from — node count, alpha index, and token memories
//! all untouched, with the engine still bit-for-bit equal to a control
//! engine on every later cycle.

use proptest::prelude::*;
use psme_ops::Production;
use psme_rete::testgen::{adversarial_chain, random_system, AdversarialConfig, GenConfig, XorShift};
use psme_rete::{naive, plan_bilinear, NetworkOrg, ReteNetwork, SerialEngine};
use std::collections::HashSet;
use std::sync::Arc;

fn build_engine(prods: &[Production]) -> SerialEngine {
    let mut net = ReteNetwork::new();
    for p in prods {
        net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
    }
    SerialEngine::new(net)
}

/// Productions eligible for a forced rebuild: all-positive (negated/NCC
/// chain reorganization is deferred — see ROADMAP) with a non-trivial
/// bilinear plan.
fn rebuild_candidates(prods: &[Production]) -> Vec<(u32, Vec<Vec<usize>>)> {
    prods
        .iter()
        .enumerate()
        .filter(|(_, p)| p.ces.iter().all(|c| c.is_pos()))
        .filter_map(|(i, p)| plan_bilinear(p, 1).map(|plan| (i as u32, plan)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Same config in, same instance out — production text, round count,
    /// and every wme of every round.
    #[test]
    fn adversarial_generator_is_deterministic(groups in 2usize..5, rounds in 1usize..12) {
        let cfg = AdversarialConfig { groups, rounds };
        let a = adversarial_chain(cfg);
        let b = adversarial_chain(cfg);
        prop_assert_eq!(format!("{}", a.production), format!("{}", b.production));
        prop_assert_eq!(a.rounds.len(), b.rounds.len());
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            prop_assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        }
        // Shape: one production, 1 + 2·groups positive CEs, and a bilinear
        // plan that splits past the anchor prefix into `groups` groups.
        prop_assert_eq!(a.production.num_pos as usize, 1 + 2 * groups);
        let plan = plan_bilinear(&a.production, 1).expect("plan exists");
        prop_assert_eq!(plan.len(), 1 + groups);
    }

    /// Rebuilding a random eligible production bilinearly after a random
    /// prefix of a random wme script changes no conflict-set delta and
    /// leaves the final conflict set equal to the never-rebuilt engine's
    /// and to the naive oracle's.
    #[test]
    fn reorg_at_a_random_cycle_is_invisible(
        seed in 0u64..10_000,
        script in prop::collection::vec((0u8..4, 0u16..200), 1..20),
        reorg_at in 0usize..20,
        pick in 0usize..8,
    ) {
        let sys = random_system(seed, GenConfig::default());
        let candidates = rebuild_candidates(&sys.productions);
        prop_assume!(!candidates.is_empty());
        let (prod_idx, plan) = candidates[pick % candidates.len()].clone();

        let mut control = build_engine(&sys.productions);
        let mut reorged = build_engine(&sys.productions);
        let mut rng = XorShift::new(seed ^ 0x5eed);
        for (step, (op, _)) in script.iter().enumerate() {
            if step == reorg_at.min(script.len() - 1) {
                reorged
                    .reorganize_production(prod_idx, NetworkOrg::Bilinear(plan.clone()))
                    .expect("plan from plan_bilinear must build");
            }
            let (c, r) = match op {
                0..=2 => {
                    let w = sys.random_wme(&mut rng);
                    (
                        control.apply_changes(vec![w.clone()], vec![]),
                        reorged.apply_changes(vec![w], vec![]),
                    )
                }
                _ => {
                    // Same operation history → same wme ids in both stores.
                    let doomed = control.state.store.iter_alive().map(|(id, _)| id).next();
                    let rm: Vec<_> = doomed.into_iter().collect();
                    (
                        control.apply_changes(vec![], rm.clone()),
                        reorged.apply_changes(vec![], rm),
                    )
                }
            };
            prop_assert_eq!(c.cs.added, r.cs.added, "step {}: added", step);
            prop_assert_eq!(c.cs.removed, r.cs.removed, "step {}: removed", step);
        }
        let oracle: HashSet<_> =
            naive::match_all(sys.productions.iter(), &control.state.store);
        let a: HashSet<_> = control.current_instantiations().into_iter().collect();
        let b: HashSet<_> = reorged.current_instantiations().into_iter().collect();
        prop_assert_eq!(&a, &oracle, "control vs naive oracle");
        prop_assert_eq!(&b, &oracle, "reorganized vs naive oracle");
    }

    /// A rebuild whose compile fails (every CE its own group — the partner
    /// CEs reference variables bound outside their chain) must roll back to
    /// exactly the starting network: same node count, consistent alpha
    /// index, untouched memories — and the engine keeps matching the rest
    /// of the load bit-for-bit like a control engine that never tried.
    #[test]
    fn failed_rebuild_rolls_back_untouched(
        groups in 2usize..4,
        rounds in 2usize..8,
        fail_at in 0usize..8,
    ) {
        let inst = adversarial_chain(AdversarialConfig { groups, rounds });
        let bogus: Vec<Vec<usize>> = (0..1 + 2 * groups).map(|i| vec![i]).collect();

        let mut control = build_engine(std::slice::from_ref(&inst.production));
        let mut tried = build_engine(std::slice::from_ref(&inst.production));
        for (r, batch) in inst.rounds.iter().enumerate() {
            if r == fail_at.min(rounds - 1) {
                let nodes = tried.net.num_nodes();
                let before: HashSet<_> = tried.current_instantiations().into_iter().collect();
                let err = tried.reorganize_production(0, NetworkOrg::Bilinear(bogus.clone()));
                prop_assert!(err.is_err(), "each-CE-alone grouping must fail to compile");
                prop_assert_eq!(tried.net.num_nodes(), nodes, "node count rolled back");
                tried.net.alpha.validate_index().expect("alpha index consistent");
                prop_assert_eq!(tried.net.retired_nodes(), 0, "nothing retired on failure");
                let after: HashSet<_> = tried.current_instantiations().into_iter().collect();
                prop_assert_eq!(before, after, "conflict set untouched by the failed build");
            }
            let c = control.apply_changes(batch.clone(), vec![]);
            let t = tried.apply_changes(batch.clone(), vec![]);
            prop_assert_eq!(c.cs.added, t.cs.added, "round {}: added", r);
            prop_assert_eq!(c.cs.removed, t.cs.removed, "round {}: removed", r);
        }
        let oracle = naive::match_production(&inst.production, &tried.state.store);
        let got: HashSet<_> = tried.current_instantiations().into_iter().collect();
        prop_assert_eq!(got, oracle.into_iter().collect::<HashSet<_>>(), "vs naive oracle");
    }
}
