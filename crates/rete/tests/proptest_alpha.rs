//! Differential property tests for the hash-discrimination alpha network:
//! the `(field, value)` jump-table classifier must be observationally
//! identical to the linear scan it replaced — same memories hit, in the
//! same order, with the same `mems_matched` — over random class/test-set
//! grids, random wmes, incremental run-time memory additions, and rolled
//! back production builds.

use proptest::prelude::*;
use psme_rete::alpha::AlphaStats;
use psme_rete::testgen::{alpha_grid, AlphaGridConfig, XorShift};
use psme_rete::{AlphaMemId, AlphaNet, NetworkOrg, ReteNetwork};
use psme_ops::Wme;

/// Run both classifiers on one wme, checking every agreement invariant.
/// Returns the shared hit list and the two stats.
fn check_one(net: &AlphaNet, w: &Wme) -> (Vec<AlphaMemId>, AlphaStats, AlphaStats) {
    let mut ih = Vec::new();
    let is = net.classify(w, |m| ih.push(m.id));
    let mut lh = Vec::new();
    let ls = net.classify_linear(w, |m| lh.push(m.id));
    assert_eq!(ih, lh, "hit sets/order diverge");
    assert_eq!(is.mems_matched, ls.mems_matched, "mems_matched diverge");
    assert!(is.tests_run <= ls.tests_run, "indexed ran more tests than linear");
    assert_eq!(
        is.tests_saved,
        ls.tests_run - is.tests_run,
        "tests_saved must account exactly for the linear-scan delta"
    );
    assert_eq!(ls.probes, 0);
    assert_eq!(ls.tests_saved, 0);
    (ih, is, ls)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Static grids: intern a batch of random test sets, then classify a
    /// stream of random wmes through both classifiers.
    #[test]
    fn indexed_equals_linear_on_static_grids(
        seed in 0u64..10_000,
        mems in 1usize..40,
        wmes in 1usize..30,
    ) {
        let grid = alpha_grid(AlphaGridConfig::default());
        let mut rng = XorShift::new(seed);
        let mut net = AlphaNet::new();
        for _ in 0..mems {
            let (class, tests, intra) = grid.random_test_set(&mut rng);
            net.intern(class, tests, intra);
        }
        net.validate_index().unwrap();
        for _ in 0..wmes {
            check_one(&net, &grid.random_wme(&mut rng));
        }
    }

    /// Run-time splice: interleave memory additions with classification —
    /// after every intern the index must still agree with the oracle on
    /// the same wme set (the §5.1 run-time chunk-addition regime).
    #[test]
    fn indexed_equals_linear_across_runtime_additions(
        seed in 0u64..10_000,
        script in prop::collection::vec(0u8..4, 4..30),
    ) {
        let grid = alpha_grid(AlphaGridConfig { classes: 2, arity: 3, domain: 3 });
        let mut rng = XorShift::new(seed ^ 0xA1FA);
        let mut net = AlphaNet::new();
        let probes: Vec<Wme> = (0..8).map(|_| grid.random_wme(&mut rng)).collect();
        for op in script {
            if op < 3 {
                let (class, tests, intra) = grid.random_test_set(&mut rng);
                net.intern(class, tests, intra);
            } else {
                // Re-intern an equal test set: must share, not duplicate.
                let before = net.len();
                let (class, tests, intra) = grid.random_test_set(&mut rng);
                let (_, _) = net.intern(class, tests.clone(), intra.clone());
                let (_, shared) = net.intern(class, tests, intra);
                prop_assert!(shared);
                prop_assert!(net.len() <= before + 1);
            }
            net.validate_index().unwrap();
            for w in &probes {
                check_one(&net, w);
            }
        }
    }

    /// Rolled-back production additions leave the discrimination index
    /// consistent: a failed bilinear build interns alpha memories, rolls
    /// back its beta nodes, and the classifiers must still agree.
    #[test]
    fn index_survives_rolled_back_builds(seed in 0u64..10_000) {
        use psme_ops::{parse_production, parse_wme, ClassRegistry};
        use std::sync::Arc;

        let mut r = ClassRegistry::new();
        r.declare_str("a", &["x", "y"]);
        r.declare_str("b", &["x", "y"]);
        let mut net = ReteNetwork::new();
        let ok = parse_production("(p keep (a ^x 1) --> (halt))", &mut r).unwrap();
        net.add_production(Arc::new(ok), NetworkOrg::Linear).unwrap();

        // A production whose alpha memories are new to the net, built with
        // an invalid bilinear partition: the build fails after interning.
        let mut rng = XorShift::new(seed);
        let (va, vb) = (rng.below(5), rng.below(5));
        let text = format!("(p bad (a ^x {va} ^y <v>) (b ^x {vb} ^y <v>) --> (halt))");
        let p = parse_production(&text, &mut r).unwrap();
        let err = net.add_production(
            Arc::new(p.clone()),
            NetworkOrg::Bilinear(vec![vec![0], vec![1, 1]]),
        );
        prop_assert!(err.is_err());
        net.alpha.validate_index().unwrap();

        // Both classifiers agree on wmes that would hit the orphaned
        // memories, and routing through them emits nothing (no successors).
        for (cls, v) in [("a", va), ("b", vb)] {
            let w = parse_wme(&format!("({cls} ^x {v} ^y 7)"), &r).unwrap();
            check_one(&net.alpha, &w);
        }

        // The same production then compiles fine linearly, reusing the
        // orphaned memories, and the classifiers still agree.
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
        net.alpha.validate_index().unwrap();
        let w = parse_wme(&format!("(a ^x {va} ^y 7)"), &r).unwrap();
        check_one(&net.alpha, &w);
    }

    /// The linear oracle's counters keep their historical meaning: class
    /// test + full chain per memory of the class.
    #[test]
    fn linear_accounting_is_full_chain(seed in 0u64..10_000, mems in 1usize..20) {
        let grid = alpha_grid(AlphaGridConfig::default());
        let mut rng = XorShift::new(seed ^ 0x11EA);
        let mut net = AlphaNet::new();
        for _ in 0..mems {
            let (class, tests, intra) = grid.random_test_set(&mut rng);
            net.intern(class, tests, intra);
        }
        let w = grid.random_wme(&mut rng);
        let ls = net.classify_linear(&w, |_| {});
        let chain: u32 = net
            .mems()
            .iter()
            .filter(|m| m.class == w.class)
            .map(|m| m.test_count() as u32)
            .sum();
        prop_assert_eq!(ls.tests_run, 1 + chain);
    }
}

/// Deterministic end-to-end agreement: a full random-system serial run with
/// the index on vs off produces identical conflict-set trajectories.
#[test]
fn serial_runs_agree_with_index_on_and_off() {
    use psme_rete::testgen::{random_system, GenConfig};
    use psme_rete::SerialEngine;
    use std::sync::Arc;

    for seed in 0..12u64 {
        let sys = random_system(seed, GenConfig::default());
        let mut engines: Vec<SerialEngine> = (0..2)
            .map(|i| {
                let mut net = ReteNetwork::new();
                for p in &sys.productions {
                    net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
                }
                net.alpha.use_index = i == 0;
                SerialEngine::new(net)
            })
            .collect();
        let mut rng = XorShift::new(seed ^ 0xFACE);
        for _ in 0..10 {
            let adds: Vec<Wme> = (0..rng.below(4) + 1).map(|_| sys.random_wme(&mut rng)).collect();
            let outs: Vec<_> =
                engines.iter_mut().map(|e| e.apply_changes(adds.clone(), vec![])).collect();
            assert_eq!(outs[0].cs.added, outs[1].cs.added, "seed {seed}");
            assert_eq!(outs[0].cs.removed, outs[1].cs.removed, "seed {seed}");
            assert_eq!(outs[0].tasks, outs[1].tasks, "task counts must match: seed {seed}");
        }
    }
}
