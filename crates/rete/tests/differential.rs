//! Differential testing: the serial Rete engine against the brute-force
//! oracle, across random production systems, random add/remove streams,
//! run-time production addition, worst-case memory collisions, and bilinear
//! network organizations.

use psme_ops::{Instantiation, WmeId};
use psme_rete::testgen::{random_system, GenConfig, XorShift};
use psme_rete::{naive, plan_bilinear, NetworkOrg, ReteNetwork, SerialEngine};
use std::collections::HashSet;
use std::sync::Arc;

fn inst_set(v: Vec<Instantiation>) -> HashSet<Instantiation> {
    v.into_iter().collect()
}

/// Drive `engines` and the oracle through the same change stream; compare
/// after every batch.
fn run_stream(seed: u64, cfg: GenConfig, batches: usize, engines: &mut [&mut SerialEngine]) {
    let sys = random_system(seed, cfg);
    let mut rng = XorShift::new(seed ^ 0xDEAD_BEEF);
    for batch in 0..batches {
        let n_add = rng.below(4) + 1;
        let adds: Vec<_> = (0..n_add).map(|_| sys.random_wme(&mut rng)).collect();
        let alive: Vec<WmeId> = engines[0].state.store.iter_alive().map(|(id, _)| id).collect();
        let mut removes = Vec::new();
        if !alive.is_empty() && rng.chance(60) {
            removes.push(alive[rng.below(alive.len())]);
            if alive.len() > 3 && rng.chance(40) {
                let second = alive[rng.below(alive.len())];
                if !removes.contains(&second) {
                    removes.push(second);
                }
            }
        }
        for e in engines.iter_mut() {
            e.apply_changes(adds.clone(), removes.clone());
        }
        let expected = naive::match_all(sys.productions.iter(), &engines[0].state.store);
        for (i, e) in engines.iter().enumerate() {
            assert_eq!(
                inst_set(e.current_instantiations()),
                expected,
                "engine {i} diverged from oracle at seed {seed}, batch {batch}"
            );
        }
    }
}

#[test]
fn serial_matches_oracle_across_seeds() {
    for seed in 0..60 {
        let sys = random_system(seed, GenConfig::default());
        let mut net = ReteNetwork::new();
        for p in &sys.productions {
            net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut e = SerialEngine::new(net);
        run_stream(seed, GenConfig::default(), 8, &mut [&mut e]);
    }
}

#[test]
fn one_line_memory_matches_oracle() {
    // All tokens collide into a single line: correctness must be unaffected.
    for seed in 100..120 {
        let sys = random_system(seed, GenConfig::default());
        let mut net = ReteNetwork::new();
        for p in &sys.productions {
            net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut e = SerialEngine::with_memory(net, 1);
        run_stream(seed, GenConfig::default(), 6, &mut [&mut e]);
    }
}

#[test]
fn unshared_network_matches_shared() {
    for seed in 200..220 {
        let sys = random_system(seed, GenConfig::default());
        let mut shared = ReteNetwork::with_sharing(true);
        let mut unshared = ReteNetwork::with_sharing(false);
        for p in &sys.productions {
            shared.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
            unshared.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut es = SerialEngine::new(shared);
        let mut eu = SerialEngine::new(unshared);
        run_stream(seed, GenConfig::default(), 6, &mut [&mut es, &mut eu]);
    }
}

#[test]
fn runtime_addition_matches_upfront() {
    // Engine A has all productions from the start; engine B adds the second
    // half at run time, mid-stream, exercising the §5.2 state update against
    // arbitrary existing WM (including negations and NCCs).
    for seed in 300..340 {
        let sys = random_system(seed, GenConfig::default());
        let (first, second) = sys.productions.split_at(sys.productions.len() / 2);

        let mut net_a = ReteNetwork::new();
        for p in &sys.productions {
            net_a.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut ea = SerialEngine::new(net_a);

        let mut net_b = ReteNetwork::new();
        for p in first {
            net_b.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut eb = SerialEngine::new(net_b);

        // Phase 1: populate some WM.
        let mut rng = XorShift::new(seed ^ 0xFACE);
        for _ in 0..3 {
            let adds: Vec<_> = (0..3).map(|_| sys.random_wme(&mut rng)).collect();
            ea.apply_changes(adds.clone(), vec![]);
            eb.apply_changes(adds, vec![]);
        }
        // Phase 2: add the rest at run time.
        for p in second {
            eb.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let expected = naive::match_all(sys.productions.iter(), &ea.state.store);
        assert_eq!(inst_set(ea.current_instantiations()), expected, "seed {seed} (A)");
        assert_eq!(inst_set(eb.current_instantiations()), expected, "seed {seed} (B)");

        // Phase 3: more changes, including removes.
        for _ in 0..4 {
            let adds: Vec<_> = (0..2).map(|_| sys.random_wme(&mut rng)).collect();
            let alive: Vec<WmeId> = ea.state.store.iter_alive().map(|(id, _)| id).collect();
            let removes = if alive.is_empty() { vec![] } else { vec![alive[rng.below(alive.len())]] };
            ea.apply_changes(adds.clone(), removes.clone());
            eb.apply_changes(adds, removes);
            let expected = naive::match_all(sys.productions.iter(), &ea.state.store);
            assert_eq!(inst_set(ea.current_instantiations()), expected, "seed {seed} (A, ph3)");
            assert_eq!(inst_set(eb.current_instantiations()), expected, "seed {seed} (B, ph3)");
        }
    }
}

#[test]
fn bilinear_matches_linear_on_random_systems() {
    let mut planned = 0;
    for seed in 400..460 {
        let sys = random_system(seed, GenConfig { max_pos: 4, ..GenConfig::default() });
        let mut lin = ReteNetwork::new();
        let mut bil = ReteNetwork::new();
        for p in &sys.productions {
            lin.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
            let org = match plan_bilinear(p, 1) {
                Some(groups) if groups.len() >= 2 => {
                    planned += 1;
                    NetworkOrg::Bilinear(groups)
                }
                _ => NetworkOrg::Linear,
            };
            bil.add_production(Arc::new(p.clone()), org).unwrap();
        }
        let mut el = SerialEngine::new(lin);
        let mut eb = SerialEngine::new(bil);
        run_stream(seed, GenConfig { max_pos: 4, ..GenConfig::default() }, 5, &mut [&mut el, &mut eb]);
    }
    assert!(planned > 30, "bilinear plans actually exercised: {planned}");
}

#[test]
fn deletes_fully_unwind_state() {
    // Adding a set of wmes and then removing them all must leave an empty
    // conflict set and empty memories (weights all zero).
    for seed in 500..520 {
        let sys = random_system(seed, GenConfig::default());
        let mut net = ReteNetwork::new();
        for p in &sys.productions {
            net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut e = SerialEngine::new(net);
        let mut rng = XorShift::new(seed);
        let adds: Vec<_> = (0..8).map(|_| sys.random_wme(&mut rng)).collect();
        e.apply_changes(adds, vec![]);
        let alive: Vec<WmeId> = e.state.store.iter_alive().map(|(id, _)| id).collect();
        e.apply_changes(vec![], alive);
        assert!(e.current_instantiations().is_empty(), "seed {seed}");
        e.state.mem.compact();
        // After compaction, only first-level right memories may retain
        // nothing; all weights were zeroed, so every line is empty.
        for (l, r) in e.state.mem.access_counts() {
            let _ = (l, r);
        }
        assert!(e.state.store.live_count() == 0);
    }
}
