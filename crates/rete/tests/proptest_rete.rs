//! Property-based tests (proptest) over the match engine's core invariants.

use proptest::prelude::*;
use psme_ops::{production_text, parse_production, Instantiation, WmeId};
use psme_rete::testgen::{random_system, GenConfig, XorShift};
use psme_rete::{naive, NetworkOrg, ReteNetwork, SerialEngine};
use std::collections::HashSet;
use std::sync::Arc;

fn inst_set(v: Vec<Instantiation>) -> HashSet<Instantiation> {
    v.into_iter().collect()
}

fn build_engine(sys: &psme_rete::testgen::GeneratedSystem, lines: usize) -> SerialEngine {
    let mut net = ReteNetwork::new();
    for p in &sys.productions {
        net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
    }
    SerialEngine::with_memory(net, lines)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// The incremental Rete conflict set always equals the from-scratch
    /// brute-force matcher's, whatever the add/remove script.
    #[test]
    fn conflict_set_matches_oracle(seed in 0u64..10_000, script in prop::collection::vec((0u8..4, 0u16..200), 1..25)) {
        let sys = random_system(seed, GenConfig::default());
        let mut eng = build_engine(&sys, 256);
        let mut rng = XorShift::new(seed ^ 0x5eed);
        for (op, pick) in script {
            match op {
                // 0..=2: add one wme (bias toward adds so WM grows)
                0..=2 => {
                    let w = sys.random_wme(&mut rng);
                    eng.apply_changes(vec![w], vec![]);
                }
                _ => {
                    let alive: Vec<WmeId> = eng.state.store.iter_alive().map(|(id, _)| id).collect();
                    if !alive.is_empty() {
                        let id = alive[pick as usize % alive.len()];
                        eng.apply_changes(vec![], vec![id]);
                    }
                }
            }
            let expected = naive::match_all(sys.productions.iter(), &eng.state.store);
            prop_assert_eq!(inst_set(eng.current_instantiations()), expected);
        }
    }

    /// Adding a wme set and then removing it in any order restores the
    /// empty conflict set and quiescent (all-zero-weight) memories.
    #[test]
    fn add_remove_is_an_inverse(seed in 0u64..10_000, n in 1usize..12, order in prop::collection::vec(0usize..64, 12)) {
        let sys = random_system(seed, GenConfig::default());
        let mut eng = build_engine(&sys, 64);
        let mut rng = XorShift::new(seed);
        let adds: Vec<_> = (0..n).map(|_| sys.random_wme(&mut rng)).collect();
        eng.apply_changes(adds, vec![]);
        // Remove in a permuted order, one batch of two at a time.
        let mut alive: Vec<WmeId> = eng.state.store.iter_alive().map(|(id, _)| id).collect();
        let mut k = 0;
        while !alive.is_empty() {
            let i = order[k % order.len()] % alive.len();
            let id = alive.swap_remove(i);
            eng.apply_changes(vec![], vec![id]);
            k += 1;
        }
        prop_assert!(eng.current_instantiations().is_empty());
        // assert_quiescent runs inside apply_changes under debug; also check
        // nothing is left after compaction.
        eng.state.mem.compact();
        prop_assert_eq!(eng.state.store.live_count(), 0);
    }

    /// A production added at run time behaves exactly as if it had been
    /// compiled upfront, for any prior WM contents.
    #[test]
    fn runtime_addition_is_transparent(seed in 0u64..10_000, split in 1usize..5, pre in 1usize..10) {
        let sys = random_system(seed, GenConfig::default());
        let split = split.min(sys.productions.len() - 1);
        let mut upfront = build_engine(&sys, 128);
        let mut net = ReteNetwork::new();
        for p in &sys.productions[..split] {
            net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        let mut late = SerialEngine::with_memory(net, 128);

        let mut rng = XorShift::new(seed ^ 0xF00D);
        let adds: Vec<_> = (0..pre).map(|_| sys.random_wme(&mut rng)).collect();
        upfront.apply_changes(adds.clone(), vec![]);
        late.apply_changes(adds, vec![]);
        for p in &sys.productions[split..] {
            late.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        prop_assert_eq!(
            inst_set(upfront.current_instantiations()),
            inst_set(late.current_instantiations())
        );
    }

    /// Printing a generated production and re-parsing it yields the same
    /// structure (printer ↔ parser round trip).
    #[test]
    fn printer_parser_round_trip(seed in 0u64..10_000) {
        let sys = random_system(seed, GenConfig::default());
        for p in &sys.productions {
            let text = production_text(p, &sys.classes);
            let mut classes = sys.classes.clone();
            let reparsed = parse_production(&text, &mut classes);
            prop_assert!(reparsed.is_ok(), "failed to reparse:\n{}\n{:?}", text, reparsed.err());
            let p2 = reparsed.unwrap();
            prop_assert_eq!(&p.ces, &p2.ces, "{}", text);
            prop_assert_eq!(&p.actions, &p2.actions);
            prop_assert_eq!(p.num_pos, p2.num_pos);
        }
    }

    /// Network statistics invariants: sharing never increases node count,
    /// and the chain depth bounds the number of two-input nodes per
    /// production.
    #[test]
    fn sharing_only_shrinks_networks(seed in 0u64..10_000) {
        let sys = random_system(seed, GenConfig::default());
        let mut shared = ReteNetwork::with_sharing(true);
        let mut unshared = ReteNetwork::with_sharing(false);
        for p in &sys.productions {
            shared.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
            unshared.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        }
        prop_assert!(shared.num_nodes() <= unshared.num_nodes());
        prop_assert_eq!(shared.prods.len(), unshared.prods.len());
        prop_assert!(shared.max_chain_depth() <= unshared.max_chain_depth());
    }
}
