//! Snapshot/restore properties for the engine-level op journal.
//!
//! A hibernated session must restore to *exactly* the live state — same
//! working memory, same token memories, same overlay, same conflict set —
//! over any interleaving of wme adds, removes and run-time chunk additions,
//! under both network organizations. And snapshot bytes from outside
//! (truncated, bit-flipped, wrong version, trailing garbage) must be
//! rejected with a typed [`SnapshotError`] — never a panic, never a
//! silently wrong session.

use proptest::prelude::*;
use psme_rete::testgen::{random_system, GenConfig, XorShift};
use psme_rete::{
    plan_bilinear, session_digest, Journal, JournaledSession, NetworkOrg, ReteNetwork,
    SnapshotError, Topology,
};
use psme_ops::{Production, WmeId};
use std::sync::Arc;

fn org_linear(_: &Production) -> NetworkOrg {
    NetworkOrg::Linear
}

fn org_bilinear(p: &Production) -> NetworkOrg {
    match plan_bilinear(p, 1) {
        Some(groups) if groups.len() >= 2 => NetworkOrg::Bilinear(groups),
        _ => NetworkOrg::Linear,
    }
}

/// Build a frozen base from the first half of a generated system and a
/// journaled session over it; the second half plays run-time chunks.
fn setup(
    seed: u64,
    org: &dyn Fn(&Production) -> NetworkOrg,
) -> (psme_rete::testgen::GeneratedSystem, Arc<Topology>, Vec<Production>, JournaledSession) {
    let sys = random_system(seed, GenConfig::default());
    let (base, chunks) = sys.productions.split_at(sys.productions.len() / 2);
    let mut net = ReteNetwork::new();
    for p in base {
        net.add_production(Arc::new(p.clone()), org(p)).unwrap();
    }
    let topo = Topology::freeze(net);
    let sess = JournaledSession::fresh(topo.clone(), true);
    let chunks = chunks.to_vec();
    (sys, topo, chunks, sess)
}

/// Drive one scripted op against the session: add (biased), remove a live
/// wme, or compile the next pending chunk into the overlay.
fn apply_op(
    sess: &mut JournaledSession,
    sys: &psme_rete::testgen::GeneratedSystem,
    rng: &mut XorShift,
    chunks: &mut Vec<Production>,
    org: &dyn Fn(&Production) -> NetworkOrg,
    op: u8,
) {
    match op {
        0..=3 => {
            let w = sys.random_wme(rng);
            sess.apply_changes(vec![w], vec![]);
        }
        4..=5 => {
            let alive: Vec<WmeId> =
                sess.eng.state.store.iter_alive().map(|(id, _)| id).collect();
            if !alive.is_empty() {
                let id = alive[rng.below(alive.len())];
                sess.apply_changes(vec![], vec![id]);
            }
        }
        _ => {
            if !chunks.is_empty() {
                let c = chunks.remove(0);
                let o = org(&c);
                let _ = sess.add_production(Arc::new(c), o);
            }
        }
    }
}

/// The round-trip property: snapshot mid-run, restore, compare digests
/// (bit-for-bit structural equality), then drive both live and restored
/// sessions through an identical tail and compare again.
fn round_trip(seed: u64, script: &[u8], tail: &[u8], org: &dyn Fn(&Production) -> NetworkOrg) {
    let (sys, topo, mut chunks, mut live) = setup(seed, org);
    let mut rng = XorShift::new(seed ^ 0x5AAF_E77E);
    for &op in script {
        apply_op(&mut live, &sys, &mut rng, &mut chunks, org, op);
    }

    let bytes = live.journal().expect("journaled").encode(&sys.classes);
    let mut reg = sys.classes.clone();
    let journal = Journal::decode(&bytes, &mut reg).expect("own bytes decode");
    let mut restored = JournaledSession::resume(topo, journal).expect("own journal replays");

    assert_eq!(
        session_digest(&live.eng),
        session_digest(&restored.eng),
        "seed {seed}: restored session differs from live"
    );
    // Re-encoding the restored session reproduces the identical snapshot.
    assert_eq!(
        restored.journal().expect("journaled").encode(&sys.classes),
        bytes,
        "seed {seed}: restored journal re-encodes differently"
    );

    // Both continue identically: same ops, same rng stream, same digests.
    let mut rng_a = XorShift::new(seed ^ 0x7A17);
    let mut rng_b = XorShift::new(seed ^ 0x7A17);
    let mut chunks_a = chunks.clone();
    let mut chunks_b = chunks;
    for &op in tail {
        apply_op(&mut live, &sys, &mut rng_a, &mut chunks_a, org, op);
        apply_op(&mut restored, &sys, &mut rng_b, &mut chunks_b, org, op);
    }
    assert_eq!(
        session_digest(&live.eng),
        session_digest(&restored.eng),
        "seed {seed}: live and restored diverged after resume"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Linear organization: snapshot→restore is bit-for-bit over random
    /// add/remove/chunk interleavings, and the restored session tracks the
    /// live one through further mutations.
    #[test]
    fn round_trip_linear(
        seed in 0u64..10_000,
        script in prop::collection::vec(0u8..7, 1..24),
        tail in prop::collection::vec(0u8..7, 0..10),
    ) {
        round_trip(seed, &script, &tail, &org_linear);
    }

    /// Bilinear organization: different share points and splice patterns,
    /// same property.
    #[test]
    fn round_trip_bilinear(
        seed in 0u64..10_000,
        script in prop::collection::vec(0u8..7, 1..24),
        tail in prop::collection::vec(0u8..7, 0..10),
    ) {
        round_trip(seed, &script, &tail, &org_bilinear);
    }

    /// Any single bit flip anywhere in a snapshot is rejected with a typed
    /// error — the checksum (or a structural check behind it) always
    /// notices, and nothing panics.
    #[test]
    fn corrupted_snapshots_are_typed_errors(
        seed in 0u64..10_000,
        script in prop::collection::vec(0u8..7, 1..16),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let (sys, _topo, mut chunks, mut live) = setup(seed, &org_linear);
        let mut rng = XorShift::new(seed ^ 0xC0FF);
        for &op in &script {
            apply_op(&mut live, &sys, &mut rng, &mut chunks, &org_linear, op);
        }
        let bytes = live.journal().unwrap().encode(&sys.classes);
        let mut bad = bytes.clone();
        let pos = flip_pos % bad.len();
        bad[pos] ^= 1 << flip_bit;
        let mut reg = sys.classes.clone();
        prop_assert!(
            Journal::decode(&bad, &mut reg).is_err(),
            "flip at byte {pos} bit {flip_bit} decoded"
        );
    }

    /// Every strict prefix of a snapshot is rejected as truncated (or by a
    /// downstream typed check) — never a panic.
    #[test]
    fn truncated_snapshots_are_typed_errors(
        seed in 0u64..10_000,
        script in prop::collection::vec(0u8..7, 1..12),
        cut in any::<usize>(),
    ) {
        let (sys, _topo, mut chunks, mut live) = setup(seed, &org_linear);
        let mut rng = XorShift::new(seed ^ 0x7123);
        for &op in &script {
            apply_op(&mut live, &sys, &mut rng, &mut chunks, &org_linear, op);
        }
        let bytes = live.journal().unwrap().encode(&sys.classes);
        let cut = cut % bytes.len(); // strict prefix: 0..len
        let mut reg = sys.classes.clone();
        prop_assert!(Journal::decode(&bytes[..cut], &mut reg).is_err());
    }
}

#[test]
fn wrong_version_and_magic_are_specific_errors() {
    let (sys, _topo, _chunks, mut live) = setup(42, &org_linear);
    live.apply_changes(vec![sys.random_wme(&mut XorShift::new(1))], vec![]);
    let bytes = live.journal().unwrap().encode(&sys.classes);

    let mut wrong_version = bytes.clone();
    wrong_version[4] = 0xEE; // version field (little-endian u32 after magic)
    let mut reg = sys.classes.clone();
    assert!(matches!(
        Journal::decode(&wrong_version, &mut reg),
        Err(SnapshotError::UnsupportedVersion(_))
    ));

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        Journal::decode(&wrong_magic, &mut reg),
        Err(SnapshotError::BadMagic)
    ));

    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(Journal::decode(&trailing, &mut reg).is_err(), "trailing garbage rejected");
}

/// Replaying a journal against a topology it was not recorded over is a
/// typed replay error, not a silently wrong session.
#[test]
fn replay_against_a_different_base_fails_or_is_caught() {
    let (sys_a, _topo_a, _ca, mut live) = setup(7, &org_linear);
    let mut rng = XorShift::new(99);
    for _ in 0..6 {
        live.apply_changes(vec![sys_a.random_wme(&mut rng)], vec![]);
    }
    // Chunk addition journals an AddProd whose replay must succeed against
    // the same base; against an empty base the production may still
    // compile, so the guarantee under test is narrower: decode+replay
    // never panics, and errors are typed.
    let bytes = live.journal().unwrap().encode(&sys_a.classes);
    let empty = Topology::freeze(ReteNetwork::new());
    let mut reg = sys_a.classes.clone();
    let journal = Journal::decode(&bytes, &mut reg).unwrap();
    match JournaledSession::resume(empty, journal) {
        Ok(sess) => {
            // WM-only journals replay fine against any base.
            assert!(sess.eng.state.store.live_count() > 0);
        }
        Err(e) => {
            assert!(matches!(e, SnapshotError::Replay(_)), "unexpected error kind: {e}");
        }
    }
}
