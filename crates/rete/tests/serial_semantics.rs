//! Hand-written scenario tests for the serial Rete engine: incremental
//! add/delete, negation counters, conjunctive negations, runtime production
//! addition with the §5.2 state update, and bilinear network equivalence.

use psme_ops::{parse_production, parse_program, parse_wme, ClassRegistry, Instantiation};
use psme_rete::{plan_bilinear, NetworkOrg, ReteNetwork, SerialEngine};
use std::collections::HashSet;
use std::sync::Arc;

fn classes() -> ClassRegistry {
    let mut r = ClassRegistry::new();
    r.declare_str("block", &["name", "color", "on"]);
    r.declare_str("hand", &["state", "holds"]);
    r.declare_str("goal", &["id", "ps", "state", "op"]);
    r
}

fn engine(r: &mut ClassRegistry, srcs: &[&str]) -> SerialEngine {
    let mut net = ReteNetwork::new();
    for s in srcs {
        let p = parse_production(s, r).unwrap();
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
    }
    SerialEngine::new(net)
}

fn inst_set(v: &[Instantiation]) -> HashSet<Instantiation> {
    v.iter().cloned().collect()
}

#[test]
fn incremental_add_then_delete_round_trips() {
    let mut r = classes();
    let mut e = engine(
        &mut r,
        &["(p graspable (block ^name <b> ^color blue) -(block ^on <b>) (hand ^state free)
            --> (halt))"],
    );
    let out = e.apply_changes(
        vec![
            parse_wme("(block ^name b1 ^color blue)", &r).unwrap(),
            parse_wme("(hand ^state free)", &r).unwrap(),
        ],
        vec![],
    );
    assert_eq!(out.cs.added.len(), 1);
    assert_eq!(out.cs.removed.len(), 0);
    assert!(out.tasks > 0);

    // Block the negation: instantiation retracts.
    let out2 = e.apply_changes(vec![parse_wme("(block ^name b2 ^on b1)", &r).unwrap()], vec![]);
    assert_eq!(out2.cs.added.len(), 0);
    assert_eq!(out2.cs.removed.len(), 1);

    // Unblock: it returns.
    let blocker = e.state.store.find_alive(&parse_wme("(block ^name b2 ^on b1)", &r).unwrap());
    let out3 = e.apply_changes(vec![], vec![blocker.unwrap()]);
    assert_eq!(out3.cs.added.len(), 1);
}

#[test]
fn mixed_add_remove_in_one_cycle() {
    let mut r = classes();
    let mut e = engine(&mut r, &["(p pair (block ^color <c>) (hand ^holds <c>) --> (halt))"]);
    let o1 = e.apply_changes(
        vec![
            parse_wme("(block ^name b1 ^color red)", &r).unwrap(),
            parse_wme("(hand ^holds red)", &r).unwrap(),
        ],
        vec![],
    );
    assert_eq!(o1.cs.added.len(), 1);
    // Swap the block for a blue one and retarget the hand, in ONE batch.
    let b1 = e.state.store.find_alive(&parse_wme("(block ^name b1 ^color red)", &r).unwrap()).unwrap();
    let h = e.state.store.find_alive(&parse_wme("(hand ^holds red)", &r).unwrap()).unwrap();
    let o2 = e.apply_changes(
        vec![
            parse_wme("(block ^name b2 ^color blue)", &r).unwrap(),
            parse_wme("(hand ^holds blue)", &r).unwrap(),
        ],
        vec![b1, h],
    );
    assert_eq!(o2.cs.added.len(), 1);
    assert_eq!(o2.cs.removed.len(), 1);
    assert_eq!(e.current_instantiations().len(), 1);
}

#[test]
fn negation_counts_multiple_blockers() {
    let mut r = classes();
    let mut e = engine(&mut r, &["(p clear (block ^name <b>) -(block ^on <b>) --> (halt))"]);
    e.apply_changes(vec![parse_wme("(block ^name b1)", &r).unwrap()], vec![]);
    assert_eq!(e.current_instantiations().len(), 1);
    // Two blockers on b1.
    e.apply_changes(
        vec![
            parse_wme("(block ^name x ^on b1)", &r).unwrap(),
            parse_wme("(block ^name y ^on b1)", &r).unwrap(),
        ],
        vec![],
    );
    // b1 is blocked twice; x and y are themselves clear.
    assert_eq!(e.current_instantiations().len(), 2);
    // Remove one blocker: b1 is still blocked by y (the not-counter must not
    // hit zero yet); only y remains clear.
    let x = e.state.store.find_alive(&parse_wme("(block ^name x ^on b1)", &r).unwrap()).unwrap();
    e.apply_changes(vec![], vec![x]);
    assert_eq!(e.current_instantiations().len(), 1);
    // Remove the second blocker: b1 becomes clear again.
    let y = e.state.store.find_alive(&parse_wme("(block ^name y ^on b1)", &r).unwrap()).unwrap();
    e.apply_changes(vec![], vec![y]);
    assert_eq!(e.current_instantiations().len(), 1);
}

#[test]
fn ncc_semantics_match_naive() {
    let mut r = classes();
    let src = "(p safe (hand ^state <h>)
                  -{ (block ^name <b> ^on <h>) (block ^name <b> ^color red) }
                --> (halt))";
    let mut e = engine(&mut r, &[src]);
    let p = parse_production(src, &mut classes()).unwrap();

    e.apply_changes(vec![parse_wme("(hand ^state h1)", &r).unwrap()], vec![]);
    assert_eq!(e.current_instantiations().len(), 1);

    // One conjunct only: still safe.
    e.apply_changes(vec![parse_wme("(block ^name b1 ^on h1)", &r).unwrap()], vec![]);
    assert_eq!(e.current_instantiations().len(), 1);

    // Complete the conjunction: blocked.
    e.apply_changes(vec![parse_wme("(block ^name b1 ^color red)", &r).unwrap()], vec![]);
    assert_eq!(e.current_instantiations().len(), 0);

    // Cross-check against the oracle at this state.
    let naive: HashSet<_> = psme_rete::naive::match_all([&p], &e.state.store).into_iter().collect();
    assert_eq!(naive.len(), 0);

    // Break the conjunction again: unblocked.
    let red = e.state.store.find_alive(&parse_wme("(block ^name b1 ^color red)", &r).unwrap()).unwrap();
    e.apply_changes(vec![], vec![red]);
    assert_eq!(e.current_instantiations().len(), 1);
}

#[test]
fn runtime_addition_equals_upfront_compilation() {
    let mut r = classes();
    let p1 = "(p a (block ^name <b> ^color blue) (hand ^state free) --> (halt))";
    let p2 = "(p b (block ^name <b> ^color blue) -(block ^on <b>) --> (halt))";

    // Engine A: both productions from the start.
    let mut ea = engine(&mut r, &[p1, p2]);
    // Engine B: p1 upfront, p2 added at run time after WM is populated.
    let mut eb = engine(&mut r, &[p1]);

    let wmes = [
        "(block ^name b1 ^color blue)",
        "(block ^name b2 ^color blue ^on b1)",
        "(hand ^state free)",
    ];
    for w in wmes {
        ea.apply_changes(vec![parse_wme(w, &r).unwrap()], vec![]);
        eb.apply_changes(vec![parse_wme(w, &r).unwrap()], vec![]);
    }
    let p2c = parse_production(p2, &mut r).unwrap();
    let out = eb.add_production(Arc::new(p2c), NetworkOrg::Linear).unwrap();
    // The update found b's instantiations in existing WM.
    assert_eq!(out.cs.added.len(), 1, "only b2 is clear");
    assert!(out.update_tasks > 0);
    assert!(out.add.shared_two_input >= 1, "b shares the blue-block join with a");

    assert_eq!(inst_set(&ea.current_instantiations()), inst_set(&eb.current_instantiations()));

    // And the engines stay equivalent on further changes.
    let w = "(block ^name b3 ^color blue)";
    ea.apply_changes(vec![parse_wme(w, &r).unwrap()], vec![]);
    eb.apply_changes(vec![parse_wme(w, &r).unwrap()], vec![]);
    assert_eq!(inst_set(&ea.current_instantiations()), inst_set(&eb.current_instantiations()));
}

#[test]
fn runtime_addition_of_fully_shared_chain() {
    // The chunk shares every two-input node with the old production: the
    // boundary is the last join, and the update must read its outputs from
    // the old P node's stored tokens.
    let mut r = classes();
    let p1 = "(p a (block ^name <b> ^color blue) (hand ^state free) --> (halt))";
    let p2 = "(p a2 (block ^name <b> ^color blue) (hand ^state free) --> (remove 2))";
    let mut e = engine(&mut r, &[p1]);
    e.apply_changes(
        vec![
            parse_wme("(block ^name b1 ^color blue)", &r).unwrap(),
            parse_wme("(hand ^state free)", &r).unwrap(),
        ],
        vec![],
    );
    let p2c = parse_production(p2, &mut r).unwrap();
    let out = e.add_production(Arc::new(p2c), NetworkOrg::Linear).unwrap();
    assert_eq!(out.add.new_two_input, 0, "chain fully shared");
    assert_eq!(out.add.shared_two_input, 2);
    assert_eq!(out.cs.added.len(), 1);
    assert_eq!(e.current_instantiations().len(), 2);
}

#[test]
fn bilinear_network_is_equivalent_to_linear() {
    let mut r = classes();
    let src = "(p mon (goal ^id g1 ^state <s>)
                  (block ^name <s> ^on <o1>) (block ^name <o1> ^color blue)
                  (block ^name <s> ^color <c2>) (hand ^holds <c2>)
                --> (halt))";
    let p = parse_production(src, &mut r).unwrap();
    let groups = plan_bilinear(&p, 1).unwrap();
    assert!(groups.len() >= 3, "expected independent clusters, got {groups:?}");

    let mut lin_net = ReteNetwork::new();
    lin_net.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
    let mut bil_net = ReteNetwork::new();
    bil_net.add_production(Arc::new(p.clone()), NetworkOrg::Bilinear(groups)).unwrap();
    let mut lin = SerialEngine::new(lin_net);
    let mut bil = SerialEngine::new(bil_net);

    let wmes = [
        "(goal ^id g1 ^state s1)",
        "(block ^name s1 ^on o1)",
        "(block ^name o1 ^color blue)",
        "(block ^name s1 ^color green)",
        "(hand ^holds green)",
        "(block ^name s1 ^on o2)", // second binding for the first cluster…
        "(block ^name o2 ^color blue)",
    ];
    for w in wmes {
        lin.apply_changes(vec![parse_wme(w, &r).unwrap()], vec![]);
        bil.apply_changes(vec![parse_wme(w, &r).unwrap()], vec![]);
        assert_eq!(
            inst_set(&lin.current_instantiations()),
            inst_set(&bil.current_instantiations()),
            "diverged after {w}"
        );
    }
    assert_eq!(lin.current_instantiations().len(), 2);

    // Deleting the goal kills everything in both.
    let g = lin.state.store.find_alive(&parse_wme("(goal ^id g1 ^state s1)", &r).unwrap()).unwrap();
    lin.apply_changes(vec![], vec![g]);
    let g2 = bil.state.store.find_alive(&parse_wme("(goal ^id g1 ^state s1)", &r).unwrap()).unwrap();
    bil.apply_changes(vec![], vec![g2]);
    assert!(lin.current_instantiations().is_empty());
    assert!(bil.current_instantiations().is_empty());
}

#[test]
fn bilinear_reduces_chain_depth() {
    let mut r = ClassRegistry::new();
    let p = psme_rete::testgen::long_chain(&mut r, 12, "deep");
    // Linear depth 12; bilinear with prefix 1… the chain is fully dependent
    // so bilinear cannot split it (single component).
    let groups = plan_bilinear(&p, 1).unwrap();
    assert_eq!(groups.len(), 2, "fully dependent chain stays one group");

    // A clustered production (the monitor-strips-state shape of Fig. 6-7)
    // splits into groups and gets a much shorter critical chain.
    let mut r2 = classes();
    let star = parse_production(
        "(p star (goal ^id <g>)
            (block ^name <g> ^on <a>) (block ^name <a> ^on <b>) (block ^name <b>)
            (hand ^state <g> ^holds <c>) (block ^name <c> ^on <d>) (block ^name <d>)
            (block ^name <g> ^color <e>) (hand ^holds <e> ^state <f>) (block ^on <f>)
          --> (halt))",
        &mut r2,
    )
    .unwrap();
    let sgroups = plan_bilinear(&star, 1).unwrap();
    assert_eq!(sgroups.len(), 4, "{sgroups:?}");
    let mut net_lin = ReteNetwork::new();
    net_lin.add_production(Arc::new(star.clone()), NetworkOrg::Linear).unwrap();
    let mut net_bil = ReteNetwork::new();
    net_bil.add_production(Arc::new(star), NetworkOrg::Bilinear(sgroups)).unwrap();
    assert!(
        net_bil.max_chain_depth() < net_lin.max_chain_depth(),
        "bilinear {} vs linear {}",
        net_bil.max_chain_depth(),
        net_lin.max_chain_depth()
    );
}

#[test]
fn sharing_reduces_node_count() {
    let mut r = classes();
    let srcs = [
        "(p s1 (block ^color blue) (hand ^state free) --> (halt))",
        "(p s2 (block ^color blue) (hand ^state free) (block ^color red) --> (halt))",
        "(p s3 (block ^color blue) (hand ^state busy) --> (halt))",
    ];
    let mut shared = ReteNetwork::with_sharing(true);
    let mut unshared = ReteNetwork::with_sharing(false);
    for s in srcs {
        let p = parse_production(s, &mut r).unwrap();
        shared.add_production(Arc::new(p.clone()), NetworkOrg::Linear).unwrap();
        unshared.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
    }
    assert!(shared.num_nodes() < unshared.num_nodes());
    assert!(shared.stats().shared_two_input > 0);
    assert_eq!(unshared.stats().shared_two_input, 0);

    // Both still match identically.
    let mut es = SerialEngine::new(shared);
    let mut eu = SerialEngine::new(unshared);
    for w in ["(block ^color blue)", "(hand ^state free)", "(block ^color red)"] {
        es.apply_changes(vec![parse_wme(w, &r).unwrap()], vec![]);
        eu.apply_changes(vec![parse_wme(w, &r).unwrap()], vec![]);
    }
    assert_eq!(inst_set(&es.current_instantiations()), inst_set(&eu.current_instantiations()));
    assert_eq!(es.current_instantiations().len(), 2);
}

#[test]
fn single_memory_line_still_correct() {
    // Force every token into one line: worst-case collisions must not change
    // semantics, only contention.
    let mut r = classes();
    let p = parse_production(
        "(p x (block ^name <b>) (block ^on <b>) -(hand ^holds <b>) --> (halt))",
        &mut r,
    )
    .unwrap();
    let mut net = ReteNetwork::new();
    net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
    let mut e = SerialEngine::with_memory(net, 1);
    e.apply_changes(
        vec![
            parse_wme("(block ^name b1)", &r).unwrap(),
            parse_wme("(block ^name b2 ^on b1)", &r).unwrap(),
            parse_wme("(block ^name b3 ^on b1)", &r).unwrap(),
        ],
        vec![],
    );
    assert_eq!(e.current_instantiations().len(), 2);
    e.apply_changes(vec![parse_wme("(hand ^holds b1)", &r).unwrap()], vec![]);
    assert_eq!(e.current_instantiations().len(), 0);
}

#[test]
fn trace_capture_records_dependencies() {
    let mut r = classes();
    let mut e = engine(&mut r, &["(p t (block ^color blue) (hand ^state free) --> (halt))"]);
    e.capture = true;
    e.apply_changes(
        vec![
            parse_wme("(block ^color blue)", &r).unwrap(),
            parse_wme("(hand ^state free)", &r).unwrap(),
        ],
        vec![],
    );
    assert_eq!(e.trace.cycles.len(), 1);
    let c = &e.trace.cycles[0];
    assert!(c.len() >= 4, "2 alpha + 2 joins + P node, got {}", c.len());
    // Every non-seed task's parent exists and precedes it.
    for t in &c.tasks {
        if let Some(p) = t.parent {
            assert!(p < t.id);
        }
    }
    // At least one task is a Prod task.
    assert!(c.tasks.iter().any(|t| matches!(t.kind, psme_rete::TaskKind::Prod)));
}

#[test]
fn program_scale_smoke() {
    // A slightly larger program: all parsed productions at once, a few dozen
    // wmes, exercising multiple classes and shared prefixes.
    let mut r = classes();
    let prods = parse_program(
        "(p m1 (goal ^id <g> ^state <s>) (block ^name <s>) --> (halt))
         (p m2 (goal ^id <g> ^state <s>) (block ^name <s> ^color blue) --> (halt))
         (p m3 (goal ^id <g> ^state <s>) -(block ^on <s>) --> (halt))
         (p m4 (block ^name <a> ^on <b>) (block ^name <b> ^on <c>) (block ^name <c>) --> (halt))",
        &mut r,
    )
    .unwrap();
    let mut net = ReteNetwork::new();
    for p in prods.clone() {
        net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
    }
    let mut e = SerialEngine::new(net);
    let mut adds = vec![parse_wme("(goal ^id g1 ^state s1)", &r).unwrap()];
    for i in 0..10 {
        adds.push(parse_wme(&format!("(block ^name t{i} ^on t{})", i + 1), &r).unwrap());
    }
    adds.push(parse_wme("(block ^name s1 ^color blue)", &r).unwrap());
    e.apply_changes(adds, vec![]);

    let naive: HashSet<_> =
        psme_rete::naive::match_all(prods.iter(), &e.state.store).into_iter().collect();
    assert_eq!(inst_set(&e.current_instantiations()), naive);
    assert!(!naive.is_empty());
}

#[test]
fn relational_join_test_direction() {
    // `^n > <m>` means wme.n > bound(m) — regression test for operand order.
    let mut r = ClassRegistry::new();
    r.declare_str("num", &["n", "tag"]);
    let mut net = ReteNetwork::new();
    let p = parse_production(
        "(p bigger (num ^n <m> ^tag base) (num ^n > <m> ^tag cand) --> (halt))",
        &mut r,
    )
    .unwrap();
    net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
    let mut e = SerialEngine::new(net);
    e.apply_changes(
        vec![
            parse_wme("(num ^n 5 ^tag base)", &r).unwrap(),
            parse_wme("(num ^n 9 ^tag cand)", &r).unwrap(),
            parse_wme("(num ^n 2 ^tag cand)", &r).unwrap(),
        ],
        vec![],
    );
    // Only 9 > 5 matches; 2 > 5 does not.
    assert_eq!(e.current_instantiations().len(), 1);
}

#[test]
fn variables_do_not_match_unset_fields() {
    let mut r = ClassRegistry::new();
    r.declare_str("rec", &["id", "role"]);
    let mut net = ReteNetwork::new();
    let p = parse_production("(p present (rec ^id <i> ^role <r>) --> (halt))", &mut r).unwrap();
    net.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
    let mut e = SerialEngine::new(net);
    e.apply_changes(
        vec![
            parse_wme("(rec ^id a ^role operator)", &r).unwrap(),
            parse_wme("(rec ^id b)", &r).unwrap(), // role unset
        ],
        vec![],
    );
    assert_eq!(e.current_instantiations().len(), 1, "unset ^role must not bind <r>");
}
