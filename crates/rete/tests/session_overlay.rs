//! Overlay-splice differential: a session that learns chunks into its
//! private overlay over a frozen shared base must be indistinguishable —
//! in match results *and* network shape — from a freshly built monolithic
//! network containing the same productions.
//!
//! Three-way comparison per random system and change stream:
//!
//! 1. **session** — `SerialEngine<SessionNet>` over a frozen [`Topology`],
//!    chunks added at run time into the overlay (splices onto the frozen
//!    base recorded as session-local deltas);
//! 2. **incremental monolithic** — `SerialEngine<ReteNetwork>` with the
//!    same base, same run-time additions, mutating the network in place;
//! 3. **fresh monolithic** — a network compiled with base *and* chunks up
//!    front, fed a replay of the full change history.
//!
//! All three must agree with each other and with the brute-force
//! [`naive`] oracle after every batch, and the session's view (base +
//! overlay + splices) must be node-for-node, edge-for-edge identical to
//! the incremental monolithic network.

use psme_ops::{Instantiation, Production, Wme, WmeId};
use psme_rete::testgen::{random_system, GenConfig, XorShift};
use psme_rete::{
    naive, plan_bilinear, NetworkOrg, NodeId, ReteNetwork, ReteView, SerialEngine, SessionNet,
    Topology,
};
use std::collections::HashSet;
use std::sync::Arc;

fn inst_set(v: Vec<Instantiation>) -> HashSet<Instantiation> {
    v.into_iter().collect()
}

/// Compile `prods` (in order) into a fresh monolithic network.
fn monolithic(prods: &[Production], org: &dyn Fn(&Production) -> NetworkOrg) -> ReteNetwork {
    let mut net = ReteNetwork::new();
    for p in prods {
        net.add_production(Arc::new(p.clone()), org(p)).unwrap();
    }
    net
}

/// The session's effective successor list for a node: its own edges (base
/// or overlay) followed by any session-local splices.
fn session_edges(sess: &SessionNet, id: NodeId) -> Vec<(NodeId, psme_rete::Side)> {
    sess.node(id).out_edges.iter().chain(sess.extra_out_edges(id)).copied().collect()
}

/// Base + overlay + splices must equal the monolithic network node for
/// node: same count, same per-node successor order (the monolithic append
/// order), same production count.
fn assert_same_shape(mono: &ReteNetwork, sess: &SessionNet, ctx: &str) {
    assert_eq!(mono.num_nodes(), sess.num_nodes(), "{ctx}: node count");
    assert_eq!(mono.num_prods(), sess.num_prods(), "{ctx}: production count");
    for id in 0..mono.num_nodes() as NodeId {
        let mono_edges = &ReteView::node(mono, id).out_edges;
        assert_eq!(*mono_edges, session_edges(sess, id), "{ctx}: node {id} successor order");
    }
}

/// Drive the three engines and the oracle through one random system.
///
/// The generated productions are split: the first half form the shared
/// base (compiled before freeze), the second half play the role of chunks
/// learned at run time after working memory is already populated.
fn run_differential(seed: u64, org: &dyn Fn(&Production) -> NetworkOrg) {
    let sys = random_system(seed, GenConfig::default());
    let (base, chunks) = sys.productions.split_at(sys.productions.len() / 2);
    if chunks.is_empty() {
        return;
    }

    // Incremental monolithic engine and the frozen-base session engine.
    let mut mono = SerialEngine::new(monolithic(base, org));
    let topo = Topology::freeze(monolithic(base, org));
    let base_nodes = topo.num_nodes();
    let mut sess = SerialEngine::new(SessionNet::new(topo.clone()));
    assert_same_shape(&mono.net, &sess.net, &format!("seed {seed} pre-chunk"));

    let mut rng = XorShift::new(seed ^ 0x5E55_10AD);
    // Full change history, replayed later into the fresh monolithic engine.
    let mut history: Vec<(Vec<Wme>, Vec<WmeId>)> = Vec::new();
    let batch = |mono: &mut SerialEngine, sess: &mut SerialEngine<SessionNet>,
                     rng: &mut XorShift,
                     history: &mut Vec<(Vec<Wme>, Vec<WmeId>)>| {
        let adds: Vec<Wme> = (0..rng.below(3) + 1).map(|_| sys.random_wme(rng)).collect();
        let alive: Vec<WmeId> = mono.state.store.iter_alive().map(|(id, _)| id).collect();
        let mut removes = Vec::new();
        if !alive.is_empty() && rng.chance(50) {
            removes.push(alive[rng.below(alive.len())]);
        }
        mono.apply_changes(adds.clone(), removes.clone());
        sess.apply_changes(adds.clone(), removes.clone());
        history.push((adds, removes));
    };

    // Phase 1: populate working memory with only the base compiled.
    for b in 0..4 {
        batch(&mut mono, &mut sess, &mut rng, &mut history);
        let expected = naive::match_all(base.iter(), &mono.state.store);
        let ctx = format!("seed {seed} phase 1 batch {b}");
        assert_eq!(inst_set(mono.current_instantiations()), expected, "{ctx}: monolithic");
        assert_eq!(inst_set(sess.current_instantiations()), expected, "{ctx}: session");
    }

    // Phase 2: learn the chunks at run time — overlay vs in-place — against
    // the now-populated working memory (§5.2 update on both paths). The
    // AddResult (node ids, production index, sharing counts) must coincide.
    for (ci, c) in chunks.iter().enumerate() {
        let rm = mono.add_production(Arc::new(c.clone()), org(c)).unwrap();
        let rs = sess.add_production(Arc::new(c.clone()), org(c)).unwrap();
        assert_eq!(rm.add, rs.add, "seed {seed} chunk {ci}: AddResult");
        assert!(rm.cs.removed.is_empty() && rs.cs.removed.is_empty());
        assert_eq!(
            inst_set(rm.cs.added.clone()),
            inst_set(rs.cs.added),
            "seed {seed} chunk {ci}: immediate instantiations"
        );
        assert_eq!(
            inst_set(rm.cs.added),
            inst_set(naive::match_production(c, &mono.state.store)),
            "seed {seed} chunk {ci}: oracle on the new production"
        );
    }
    assert_same_shape(&mono.net, &sess.net, &format!("seed {seed} post-chunk"));
    assert_eq!(sess.net.overlay_prods(), chunks.len(), "seed {seed}: chunks in overlay");
    assert_eq!(
        sess.net.overlay_nodes(),
        sess.net.num_nodes() - base_nodes,
        "seed {seed}: overlay holds exactly the growth"
    );
    assert_eq!(topo.num_nodes(), base_nodes, "seed {seed}: frozen base untouched");

    // Phase 3: keep mutating working memory with the chunks live.
    for b in 0..4 {
        batch(&mut mono, &mut sess, &mut rng, &mut history);
        let expected = naive::match_all(sys.productions.iter(), &mono.state.store);
        let ctx = format!("seed {seed} phase 3 batch {b}");
        assert_eq!(inst_set(mono.current_instantiations()), expected, "{ctx}: monolithic");
        assert_eq!(inst_set(sess.current_instantiations()), expected, "{ctx}: session");
    }

    // Fresh monolithic network with base + chunks compiled up front, fed
    // the identical change history (same WME id assignment), must land on
    // the same match state — and the same node count as base + overlay.
    let mut fresh = SerialEngine::new(monolithic(&sys.productions, org));
    for (adds, removes) in history {
        fresh.apply_changes(adds, removes);
    }
    assert_eq!(fresh.net.num_nodes(), sess.net.num_nodes(), "seed {seed}: fresh node count");
    let expected = naive::match_all(sys.productions.iter(), &fresh.state.store);
    assert_eq!(inst_set(fresh.current_instantiations()), expected, "seed {seed}: fresh");
    assert_eq!(inst_set(sess.current_instantiations()), expected, "seed {seed}: session vs fresh");
}

#[test]
fn overlay_chunks_match_monolithic_linear() {
    for seed in 0..40 {
        run_differential(seed, &|_| NetworkOrg::Linear);
    }
}

#[test]
fn overlay_chunks_match_monolithic_bilinear() {
    // Bilinear chunk compilation produces different share points and splice
    // patterns onto the frozen base than the linear chains do.
    for seed in 100..130 {
        run_differential(seed, &|p| match plan_bilinear(p, 1) {
            Some(groups) if groups.len() >= 2 => NetworkOrg::Bilinear(groups),
            _ => NetworkOrg::Linear,
        });
    }
}

#[test]
fn overlay_never_mutates_the_shared_base() {
    // Two sessions over one topology learn *different* chunk sets; each
    // must match its own monolithic twin, and neither sees the other's
    // chunks (the base Arc is shared — any leak through it would cross).
    for seed in 200..220 {
        let sys = random_system(seed, GenConfig::default());
        if sys.productions.len() < 3 {
            continue;
        }
        let (base, rest) = sys.productions.split_at(sys.productions.len() / 3);
        let (chunks_a, chunks_b) = rest.split_at(rest.len() / 2);
        if chunks_a.is_empty() || chunks_b.is_empty() {
            continue;
        }
        let org = |_: &Production| NetworkOrg::Linear;
        let topo = Topology::freeze(monolithic(base, &org));
        let mut sa = SerialEngine::new(SessionNet::new(topo.clone()));
        let mut sb = SerialEngine::new(SessionNet::new(topo.clone()));

        let mut rng = XorShift::new(seed ^ 0xB0B0);
        let mut adds: Vec<Wme> = (0..6).map(|_| sys.random_wme(&mut rng)).collect();
        adds.dedup();
        sa.apply_changes(adds.clone(), vec![]);
        sb.apply_changes(adds.clone(), vec![]);
        for c in chunks_a {
            sa.add_production(Arc::new(c.clone()), NetworkOrg::Linear).unwrap();
        }
        for c in chunks_b {
            sb.add_production(Arc::new(c.clone()), NetworkOrg::Linear).unwrap();
        }
        let more: Vec<Wme> = (0..4).map(|_| sys.random_wme(&mut rng)).collect();
        sa.apply_changes(more.clone(), vec![]);
        sb.apply_changes(more, vec![]);

        let visible_a: Vec<Production> = base.iter().chain(chunks_a).cloned().collect();
        let visible_b: Vec<Production> = base.iter().chain(chunks_b).cloned().collect();
        assert_eq!(
            inst_set(sa.current_instantiations()),
            naive::match_all(visible_a.iter(), &sa.state.store),
            "seed {seed}: session A sees base + its own chunks only"
        );
        assert_eq!(
            inst_set(sb.current_instantiations()),
            naive::match_all(visible_b.iter(), &sb.state.store),
            "seed {seed}: session B sees base + its own chunks only"
        );
        assert_eq!(topo.num_nodes() + sa.net.overlay_nodes(), sa.net.num_nodes());
        assert_eq!(topo.num_nodes() + sb.net.overlay_nodes(), sb.net.num_nodes());
    }
}
