//! The NS32032 cost model.
//!
//! The Encore Multimax used in the paper ran NS32032 processors at roughly
//! 0.75 MIPS; Table 6-1 reports an average task granularity of ≈400 µs
//! (428/438/400 µs across the three tasks) with a 200–800 µs spread. The
//! model below assigns each traced task a cost from its measured work
//! counters (opposite-memory entries scanned, children emitted, constant
//! tests run), calibrated to land in that envelope.

use psme_rete::{TaskKind, TaskRecord};

/// Per-operation costs in simulated microseconds.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Base cost of an alpha (wme-change) task.
    pub alpha_base: f64,
    /// Per constant test evaluated in the discrimination net.
    pub alpha_per_test: f64,
    /// Per jump-table hash probe in the indexed discrimination net (a
    /// hashed dispatch, cheaper than walking a constant-test chain — the
    /// §5.1 jumptable is "considerably faster" than test-by-test
    /// interpretation).
    pub alpha_probe: f64,
    /// Base cost of a two-input activation (hash, compare, bookkeeping).
    pub beta_base: f64,
    /// Per opposite-memory candidate fully examined — structural key
    /// compare plus consistency tests, under the line lock.
    pub per_scanned: f64,
    /// Per candidate rejected by the stored 64-bit hash compare before any
    /// structural work (indexed probes; one word compare under the lock).
    pub per_hash_reject: f64,
    /// Per co-hashed entry of another node traversed and filtered by the
    /// reference whole-line scan (a node-id compare and pointer bump under
    /// the lock; 0 entries when the per-node line index is on).
    pub per_skip: f64,
    /// Per child activation constructed.
    pub per_emit: f64,
    /// Base cost of a P-node activation (conflict-set update).
    pub prod_base: f64,
    /// Memory-line critical-section base (token insert/remove), excluding
    /// the acquire/release overhead priced separately per acquisition.
    pub line_hold_base: f64,
    /// Per line-lock acquisition (acquire + release pair). Standalone beta
    /// tasks pay exactly one; line-lock batching amortizes it across a
    /// same-line group, recorded in [`TaskRecord::acquires`]. The old
    /// 60 µs hold base split as 36 + 24 so unbatched traces (acquires = 1)
    /// cost exactly what they did before the split.
    pub per_line_acquire: f64,
    /// Queue critical section (one push or one pop).
    pub queue_op: f64,
    /// One spin-loop iteration while waiting for a lock.
    pub spin: f64,
    /// Extra queue-lock interference per idle process doing failed pops
    /// ("these failed pop operations increase with an increasing number of
    /// processors, and interfere with the operation of the system", §6.1).
    pub failed_pop_interference: f64,
    /// Work-stealing: owner-end deque operation (plain load/store on the
    /// bottom, no lock, no fence on push) — far cheaper than a locked
    /// queue critical section.
    pub ws_owner_op: f64,
    /// Work-stealing: one successful steal (SeqCst fence + top CAS on the
    /// victim's deque; the only cross-worker serialization point).
    pub ws_steal: f64,
    /// Work-stealing: fixed cost of publishing one batch of children (a
    /// single release store covers the whole batch).
    pub ws_batch_publish: f64,
    /// Adaptive reorganization: fixed cost of one mid-run rebuild beyond
    /// its traced §5.2 update tasks — the quiesced-cycle barrier, the §5.1
    /// bilinear surgery beside the live chain, the successor splice and
    /// old-chain retirement. The update tasks themselves are an ordinary
    /// `Phase::Update` cycle trace priced by [`CostModel::body_cost`].
    pub reorg_fixed: f64,
    /// Adaptive reorganization: per freshly built beta node (allocate,
    /// link, register in the memory table).
    pub reorg_per_node: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            alpha_base: 80.0,
            alpha_per_test: 4.0,
            alpha_probe: 2.0,
            beta_base: 220.0,
            per_scanned: 35.0,
            per_hash_reject: 6.0,
            per_skip: 4.0,
            per_emit: 40.0,
            prod_base: 170.0,
            line_hold_base: 36.0,
            per_line_acquire: 24.0,
            queue_op: 42.0,
            spin: 18.0,
            failed_pop_interference: 12.0,
            ws_owner_op: 6.0,
            ws_steal: 25.0,
            ws_batch_publish: 10.0,
            reorg_fixed: 900.0,
            reorg_per_node: 50.0,
        }
    }
}

impl CostModel {
    /// Compute cost of the task body excluding queue operations, split into
    /// `(under_line_lock, after_lock)` portions.
    pub fn body_cost(&self, t: &TaskRecord) -> (f64, f64) {
        match t.kind {
            TaskKind::Alpha => {
                // `scanned` includes the probes; probes are re-priced at
                // the (cheaper) hashed-dispatch rate.
                let chain = t.scanned.saturating_sub(t.probes) as f64;
                (
                    0.0,
                    self.alpha_base
                        + chain * self.alpha_per_test
                        + t.probes as f64 * self.alpha_probe,
                )
            }
            TaskKind::Join | TaskKind::Neg => {
                // `scanned` counts candidates in both memory modes; the
                // hash-rejected ones cost a word compare instead of the
                // full structural examine, and the reference scan pays
                // `per_skip` for each co-hashed entry it filters by node.
                let full = t.scanned.saturating_sub(t.hash_rejects) as f64;
                (
                    self.line_hold_base
                        + t.acquires as f64 * self.per_line_acquire
                        + full * self.per_scanned
                        + t.hash_rejects as f64 * self.per_hash_reject
                        + t.skipped as f64 * self.per_skip,
                    self.beta_base + t.emitted as f64 * self.per_emit,
                )
            }
            TaskKind::Prod => (
                self.line_hold_base + t.acquires as f64 * self.per_line_acquire,
                self.prod_base,
            ),
        }
    }

    /// Total compute cost of a task (locks uncontended, queue ops included
    /// for `pushes` children + one pop).
    pub fn total_cost(&self, t: &TaskRecord, children: usize) -> f64 {
        let (locked, after) = self.body_cost(t);
        locked + after + self.queue_op * (1.0 + children as f64)
    }

    /// Serial overhead of one mid-run reorganization (µs): everything a
    /// reorg-on sweep pays that a reorg-off sweep does not, *excluding* the
    /// §5.2 state-update tasks (those arrive as a normal update-phase cycle
    /// trace and go through the DES like any other cycle). `new_nodes` is
    /// the bilinear subnetwork's node count.
    pub fn reorg_overhead(&self, new_nodes: usize) -> f64 {
        self.reorg_fixed + new_nodes as f64 * self.reorg_per_node
    }

    /// Does a reorganization pay for itself? `update_us` is the simulated
    /// makespan of its §5.2 state-update cycle, `saving_per_cycle_us` the
    /// simulated per-cycle match saving of the new organization, and
    /// `remaining_cycles` the cycles left in the run. This is the
    /// break-even question a reorg-on vs reorg-off DES sweep answers in
    /// aggregate; the detector's `min_window_cost` threshold is calibrated
    /// so flagged productions clear it by a wide margin.
    pub fn reorg_pays_off(
        &self,
        new_nodes: usize,
        update_us: f64,
        saving_per_cycle_us: f64,
        remaining_cycles: u64,
    ) -> bool {
        saving_per_cycle_us * remaining_cycles as f64 > self.reorg_overhead(new_nodes) + update_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_rete::Side;

    fn rec(kind: TaskKind, scanned: u32, emitted: u32) -> TaskRecord {
        TaskRecord {
            id: 0,
            parent: None,
            node: 1,
            kind,
            side: Some(Side::Left),
            delta: 1,
            scanned,
            hash_rejects: 0,
            skipped: 0,
            probes: 0,
            emitted,
            line: Some(0),
            acquires: 1,
            wall_ns: 0,
        }
    }

    #[test]
    fn typical_join_lands_in_paper_envelope() {
        let m = CostModel::default();
        // A typical two-input activation scanning a few tokens and emitting
        // one child: Table 6-1's 400 µs ballpark with a 200–800 µs spread.
        let typical = m.total_cost(&rec(TaskKind::Join, 3, 1), 1);
        assert!(
            (300.0..550.0).contains(&typical),
            "typical join cost {typical} µs"
        );
        let light = m.total_cost(&rec(TaskKind::Join, 0, 0), 0);
        assert!(light >= 200.0, "light join {light}");
        let heavy = m.total_cost(&rec(TaskKind::Join, 10, 4), 4);
        assert!((600.0..1100.0).contains(&heavy), "heavy join {heavy}");
    }

    #[test]
    fn alpha_tasks_are_cheap() {
        let m = CostModel::default();
        let a = m.total_cost(&rec(TaskKind::Alpha, 20, 3), 3);
        let j = m.total_cost(&rec(TaskKind::Join, 3, 1), 1);
        assert!(a < j, "alpha {a} < join {j}");
    }

    #[test]
    fn probes_are_cheaper_than_chain_tests() {
        let m = CostModel::default();
        let mut indexed = rec(TaskKind::Alpha, 5, 0);
        indexed.probes = 3;
        let linear = rec(TaskKind::Alpha, 5, 0);
        let (_, ci) = m.body_cost(&indexed);
        let (_, cl) = m.body_cost(&linear);
        assert!(ci < cl, "hashed probes re-priced below chain tests: {ci} vs {cl}");
        assert!((ci - (m.alpha_base + 2.0 * m.alpha_per_test + 3.0 * m.alpha_probe)).abs() < 1e-9);
    }

    #[test]
    fn scanning_happens_under_the_line_lock() {
        let m = CostModel::default();
        let (locked, _) = m.body_cost(&rec(TaskKind::Join, 8, 0));
        assert!(locked > m.line_hold_base);
    }

    #[test]
    fn hash_rejected_candidates_are_cheap() {
        let m = CostModel::default();
        let reference = rec(TaskKind::Join, 8, 1);
        let mut indexed = reference;
        indexed.hash_rejects = 6;
        let (l_ref, a_ref) = m.body_cost(&reference);
        let (l_idx, a_idx) = m.body_cost(&indexed);
        assert_eq!(a_ref, a_idx, "emission cost unchanged");
        assert!(l_idx < l_ref, "hash rejects shrink lock hold: {l_idx} vs {l_ref}");
        let expect =
            m.line_hold_base + m.per_line_acquire + 2.0 * m.per_scanned + 6.0 * m.per_hash_reject;
        assert!((l_idx - expect).abs() < 1e-9);
    }

    #[test]
    fn batched_tasks_skip_the_acquire_cost() {
        let m = CostModel::default();
        let standalone = rec(TaskKind::Join, 3, 1);
        let mut batched = standalone;
        batched.acquires = 0;
        let (l_solo, a_solo) = m.body_cost(&standalone);
        let (l_bat, a_bat) = m.body_cost(&batched);
        assert_eq!(a_solo, a_bat, "after-lock cost unchanged");
        assert!((l_solo - l_bat - m.per_line_acquire).abs() < 1e-9);
        // The split preserves the pre-split hold cost for unbatched tasks,
        // so committed artifacts from acquires = 1 traces stay comparable.
        assert!((m.line_hold_base + m.per_line_acquire - 60.0).abs() < 1e-9);
    }

    #[test]
    fn reorg_overhead_amortizes_over_remaining_cycles() {
        let m = CostModel::default();
        assert!((m.reorg_overhead(0) - m.reorg_fixed).abs() < 1e-9);
        assert!(m.reorg_overhead(8) > m.reorg_overhead(4));
        // A chain-dominant production saving a task granularity per cycle
        // (Table 6-1's ≈400 µs) clears a 10-node rebuild within a handful
        // of cycles; a negligible saving never does.
        let update_us = 5.0 * 400.0;
        assert!(m.reorg_pays_off(10, update_us, 400.0, 100));
        assert!(!m.reorg_pays_off(10, update_us, 400.0, 5));
        assert!(!m.reorg_pays_off(10, update_us, 0.5, 1000));
    }

    #[test]
    fn whole_line_skips_cost_but_less_than_candidates() {
        let m = CostModel::default();
        assert!(m.per_skip < m.per_hash_reject);
        assert!(m.per_hash_reject < m.per_scanned);
        let indexed = rec(TaskKind::Neg, 3, 0);
        let mut reference = indexed;
        reference.skipped = 20;
        let (l_idx, _) = m.body_cost(&indexed);
        let (l_ref, _) = m.body_cost(&reference);
        assert!((l_ref - l_idx - 20.0 * m.per_skip).abs() < 1e-9);
        // The indexed probe of the same task DAG is never costlier: equal
        // scanned, zero skipped, and each hash reject replaces a full
        // examine at a lower rate.
        assert!(l_idx <= l_ref);
    }
}
