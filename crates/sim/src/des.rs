//! The discrete-event simulator: replay one cycle's task DAG on P virtual
//! Multimax processors.
//!
//! Each traced task becomes runnable when its parent pushes it; a worker
//! executes it as: pop (queue critical section) → memory-line critical
//! section → compute → push children (queue critical sections, which is
//! when the children become available). Locks are single-server resources
//! (`grant = max(now, lock_free)`); waiting is spinning, counted in spins.
//! The single-queue configuration additionally charges the idle-process
//! failed-pop interference the paper identifies at high process counts.

use crate::cost::CostModel;
use psme_rete::{CycleTrace, TaskKind};

/// Queue organization (mirrors `psme_core::Scheduler`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimScheduler {
    /// One central task queue.
    Single,
    /// One queue per process, with cycling search over spin-locked queues.
    Multi,
    /// Per-process Chase–Lev deques: owner pops are lock-free, only steals
    /// serialize (on the victim's top CAS), children are published in one
    /// batch, and idle processes cause no failed-pop lock interference.
    WorkStealing,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Match processes (the paper sweeps 1–13).
    pub workers: usize,
    /// Queue organization.
    pub scheduler: SimScheduler,
    /// Cost model.
    pub cost: CostModel,
    /// Record the tasks-in-system timeline (Figure 6-6).
    pub timeline: bool,
}

impl SimConfig {
    /// Config with defaults for `workers` processes.
    pub fn new(workers: usize, scheduler: SimScheduler) -> SimConfig {
        SimConfig { workers, scheduler, cost: CostModel::default(), timeline: false }
    }
}

/// Result of simulating one cycle.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// Wall-clock of the cycle on the simulated machine (µs).
    pub makespan_us: f64,
    /// Tasks executed.
    pub tasks: u64,
    /// Total busy compute time across processes (µs).
    pub busy_us: f64,
    /// Total time spent waiting on queue locks (µs).
    pub queue_wait_us: f64,
    /// Queue-lock spins (wait / spin cost).
    pub queue_spins: u64,
    /// Total time waiting on memory-line locks (µs).
    pub line_wait_us: f64,
    /// Cross-queue takes: pops served from a queue other than the worker's
    /// own (steals under [`SimScheduler::WorkStealing`], cycling-search
    /// hits under [`SimScheduler::Multi`]).
    pub steals: u64,
    /// `(time_us, tasks_in_system)` samples when timeline recording is on.
    pub timeline: Vec<(f64, u32)>,
}

impl SimResult {
    /// Queue spins per task (Figure 6-3's metric).
    pub fn spins_per_task(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.queue_spins as f64 / self.tasks as f64
        }
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
struct Pending {
    avail: f64,
    seq: u32,
    idx: usize,
}

/// A single-server resource whose busy time is a set of intervals.
///
/// The greedy assignment loop executes a task's pushes at *future*
/// simulated times before other (earlier) tasks are assigned, so a simple
/// "next free time" scalar would wrongly block earlier operations behind
/// later ones. Interval bookkeeping lets an operation at time `t` take the
/// first gap at or after `t` that fits.
#[derive(Default, Debug)]
struct IntervalLock {
    /// Sorted, non-overlapping (start, end) busy intervals.
    intervals: Vec<(f64, f64)>,
}

impl IntervalLock {
    /// Acquire for `dur` at or after `t`; returns the grant time.
    fn acquire(&mut self, t: f64, dur: f64) -> f64 {
        if dur <= 0.0 {
            return t;
        }
        let mut g = t;
        let mut pos = self.intervals.partition_point(|&(_, e)| e <= t);
        while pos < self.intervals.len() {
            let (s, e) = self.intervals[pos];
            if g + dur <= s {
                break;
            }
            g = g.max(e);
            pos += 1;
        }
        // Insert (g, g+dur), coalescing with neighbours when contiguous.
        if pos > 0 && (self.intervals[pos - 1].1 - g).abs() < 1e-9 {
            self.intervals[pos - 1].1 = g + dur;
            // Possibly merge with the following interval.
            if pos < self.intervals.len() && (self.intervals[pos].0 - (g + dur)).abs() < 1e-9 {
                self.intervals[pos - 1].1 = self.intervals[pos].1;
                self.intervals.remove(pos);
            }
        } else if pos < self.intervals.len() && (self.intervals[pos].0 - (g + dur)).abs() < 1e-9 {
            self.intervals[pos].0 = g;
        } else {
            self.intervals.insert(pos, (g, g + dur));
        }
        g
    }
}

/// Simulate one cycle trace.
pub fn simulate_cycle(trace: &CycleTrace, cfg: &SimConfig) -> SimResult {
    let n = trace.tasks.len();
    let mut result = SimResult { tasks: n as u64, ..Default::default() };
    if n == 0 {
        return result;
    }
    let cost = &cfg.cost;
    let workers = cfg.workers.max(1);
    let nqueues = match cfg.scheduler {
        SimScheduler::Single => 1,
        SimScheduler::Multi | SimScheduler::WorkStealing => workers,
    };

    // Children lists (push order = trace order).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut is_seed = vec![true; n];
    for (i, t) in trace.tasks.iter().enumerate() {
        if let Some(p) = t.parent {
            children[p as usize].push(i);
            is_seed[i] = false;
        }
    }

    // Per-queue FIFO of pending tasks, ordered by (avail, seq).
    let mut queues: Vec<Vec<Pending>> = vec![Vec::new(); nqueues];
    let mut seq: u32 = 0;
    let enqueue = |queues: &mut Vec<Vec<Pending>>, q: usize, avail: f64, idx: usize, seq: &mut u32| {
        let p = Pending { avail, seq: *seq, idx };
        *seq += 1;
        // Insert keeping (avail, seq) order; pushes mostly arrive in
        // increasing avail so this is near-O(1).
        let pos = queues[q]
            .binary_search_by(|x| {
                (x.avail, x.seq).partial_cmp(&(p.avail, p.seq)).expect("no NaN")
            })
            .unwrap_or_else(|e| e);
        queues[q].insert(pos, p);
    };

    // Seeds are available at time 0, distributed round-robin (the control
    // process pushes the cycle's wme changes).
    {
        let mut k = 0usize;
        for (i, &s) in is_seed.iter().enumerate() {
            if s {
                enqueue(&mut queues, k % nqueues, 0.0, i, &mut seq);
                k += 1;
            }
        }
    }

    let mut worker_free = vec![0.0f64; workers];
    let mut queue_locks: Vec<IntervalLock> = (0..nqueues).map(|_| IntervalLock::default()).collect();
    let mut line_locks: std::collections::HashMap<u32, IntervalLock> = Default::default();
    let mut remaining = n;
    let mut spans: Vec<(f64, f64)> = if cfg.timeline { vec![(0.0, 0.0); n] } else { Vec::new() };
    let mut avail_time: Vec<f64> = vec![0.0; n];

    while remaining > 0 {
        // Pick the (worker, task) pair with the earliest possible start.
        // (start, seq, worker, queue) — seq breaks ties FIFO.
        let mut best: Option<(f64, u32, usize, usize)> = None;
        for (w, &t_free) in worker_free.iter().enumerate() {
            // Eligible task: own queue head first, else the earliest head
            // anywhere (stealing / cycling through other queues).
            let home = w % nqueues;
            let cand_q = if !queues[home].is_empty() {
                Some(home)
            } else {
                queues
                    .iter()
                    .enumerate()
                    .filter_map(|(q, queue)| queue.first().map(|p| (p.avail, p.seq, q)))
                    .min_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("no NaN"))
                    .map(|(_, _, q)| q)
            };
            if let Some(q) = cand_q {
                let p = queues[q][0];
                let start = t_free.max(p.avail);
                let better = match best {
                    None => true,
                    Some((bs, bseq, _, _)) => (start, p.seq) < (bs, bseq),
                };
                if better {
                    best = Some((start, p.seq, w, q));
                }
            }
        }
        let (start, _, w, q) = best.expect("tasks remain but none pending — trace DAG broken");
        let p = queues[q].remove(0);
        let t = &trace.tasks[p.idx];
        remaining -= 1;

        let mut now;
        if cfg.scheduler == SimScheduler::WorkStealing {
            if q == w % nqueues {
                // Owner pop: plain bottom decrement, no lock, no
                // interference from idle processes.
                now = start + cost.ws_owner_op;
            } else {
                // Steal: serializes on the victim's top CAS only.
                result.steals += 1;
                let grant = queue_locks[q].acquire(start, cost.ws_steal);
                result.queue_wait_us += grant - start;
                now = grant + cost.ws_steal;
            }
        } else {
            // Pop through the queue lock. Idle processes doing failed pops
            // interfere with real queue operations (§6.1) — but only
            // processes in excess of the currently available tasks are
            // actually spinning on empty queues.
            if q != w % nqueues {
                result.steals += 1;
            }
            let idle = worker_free.iter().filter(|&&f| f <= start).count().saturating_sub(1);
            let available: usize =
                queues.iter().map(|qq| qq.partition_point(|pp| pp.avail <= start)).sum();
            let idle_excess = idle.saturating_sub(available);
            let interference = idle_excess as f64 * cost.failed_pop_interference / nqueues as f64;
            let grant = queue_locks[q].acquire(start, cost.queue_op + interference);
            result.queue_wait_us += grant - start;
            now = grant + cost.queue_op + interference;
        }

        // Memory-line critical section.
        let (locked, after) = cost.body_cost(t);
        if t.kind != TaskKind::Alpha && locked > 0.0 {
            let line = t.line.unwrap_or(0);
            let lock = line_locks.entry(line).or_default();
            let lgrant = lock.acquire(now, locked);
            result.line_wait_us += lgrant - now;
            now = lgrant + locked;
        }
        now += after;

        // Push children; each becomes available at its push completion.
        // Under work stealing the whole brood is written and then published
        // with one release store, so every child becomes available at the
        // same instant and no lock is involved.
        if cfg.scheduler == SimScheduler::WorkStealing {
            if !children[p.idx].is_empty() {
                now += cost.ws_batch_publish
                    + cost.ws_owner_op * children[p.idx].len() as f64;
                for &c in &children[p.idx] {
                    avail_time[c] = now;
                    enqueue(&mut queues, w, now, c, &mut seq);
                }
            }
        } else {
            for &c in &children[p.idx] {
                let cq = match cfg.scheduler {
                    SimScheduler::Single => 0,
                    SimScheduler::Multi | SimScheduler::WorkStealing => w,
                };
                let pg = queue_locks[cq].acquire(now, cost.queue_op);
                result.queue_wait_us += pg - now;
                now = pg + cost.queue_op;
                avail_time[c] = now;
                enqueue(&mut queues, cq, now, c, &mut seq);
            }
        }
        // Busy time is the schedule-invariant per-task cost; waits and
        // failed-pop interference are accounted separately.
        result.busy_us += cost.total_cost(t, children[p.idx].len());
        worker_free[w] = now;
        result.makespan_us = result.makespan_us.max(now);
        if cfg.timeline {
            spans[p.idx] = (avail_time[p.idx], now);
        }
    }
    result.queue_spins = (result.queue_wait_us / cost.spin) as u64;

    if cfg.timeline {
        // Tasks-in-system over time (available + running), sampled at
        // 100 µs — the paper's Figure 6-6 time unit.
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(2 * n);
        for &(a, e) in &spans {
            events.push((a, 1));
            events.push((e, -1));
        }
        events.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN"));
        let mut level = 0i32;
        let mut ei = 0usize;
        let step = 100.0;
        let mut t = 0.0;
        while t <= result.makespan_us + step {
            while ei < events.len() && events[ei].0 <= t {
                level += events[ei].1;
                ei += 1;
            }
            result.timeline.push((t, level.max(0) as u32));
            t += step;
        }
    }
    result
}

/// Simulate a whole run (synchronous cycles: total = sum of makespans).
pub fn simulate_run(traces: &[CycleTrace], cfg: &SimConfig) -> Vec<SimResult> {
    traces.iter().map(|t| simulate_cycle(t, cfg)).collect()
}

/// Total simulated time of a run in seconds.
pub fn total_seconds(results: &[SimResult]) -> f64 {
    results.iter().map(|r| r.makespan_us).sum::<f64>() / 1e6
}

/// Speedup of `par` relative to `uni` (same traces, different configs).
pub fn speedup(uni: &[SimResult], par: &[SimResult]) -> f64 {
    total_seconds(uni) / total_seconds(par).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_rete::{CycleTrace, Phase, Side, TaskRecord};

    fn rec(id: u32, parent: Option<u32>, scanned: u32, emitted: u32) -> TaskRecord {
        TaskRecord {
            id,
            parent,
            node: 1,
            kind: TaskKind::Join,
            side: Some(Side::Left),
            delta: 1,
            scanned,
            hash_rejects: 0,
            skipped: 0,
            probes: 0,
            emitted,
            line: Some(id % 64),
            wall_ns: 0,
        }
    }

    fn flat_trace(n: u32) -> CycleTrace {
        CycleTrace { cycle: 0, phase: Phase::Match, tasks: (0..n).map(|i| rec(i, None, 2, 0)).collect() }
    }

    fn chain_trace(n: u32) -> CycleTrace {
        CycleTrace {
            cycle: 0,
            phase: Phase::Match,
            tasks: (0..n).map(|i| rec(i, i.checked_sub(1), 2, 1)).collect(),
        }
    }

    #[test]
    fn independent_tasks_scale_until_queue_saturates() {
        let t = flat_trace(400);
        let uni = simulate_cycle(&t, &SimConfig::new(1, SimScheduler::Single)).makespan_us;
        let p8 = simulate_cycle(&t, &SimConfig::new(8, SimScheduler::Single)).makespan_us;
        let s8 = uni / p8;
        assert!(s8 > 5.0, "8 workers on independent equal tasks: {s8}");
        let multi = simulate_cycle(&t, &SimConfig::new(8, SimScheduler::Multi)).makespan_us;
        assert!(uni / multi > 6.0, "multi queue: {}", uni / multi);
    }

    #[test]
    fn pure_chain_never_speeds_up() {
        let t = chain_trace(100);
        let uni = simulate_cycle(&t, &SimConfig::new(1, SimScheduler::Multi)).makespan_us;
        let p8 = simulate_cycle(&t, &SimConfig::new(8, SimScheduler::Multi)).makespan_us;
        let s = uni / p8;
        assert!(s < 1.2, "chain cannot parallelize: {s}");
    }

    #[test]
    fn work_stealing_scales_at_least_as_well_as_locked_queues() {
        let t = flat_trace(400);
        let uni = simulate_cycle(&t, &SimConfig::new(1, SimScheduler::WorkStealing)).makespan_us;
        for workers in [4usize, 8, 13] {
            let ws = simulate_cycle(&t, &SimConfig::new(workers, SimScheduler::WorkStealing));
            let single =
                simulate_cycle(&t, &SimConfig::new(workers, SimScheduler::Single)).makespan_us;
            assert!(
                ws.makespan_us <= single,
                "{workers} workers: ws {} vs single {single}",
                ws.makespan_us
            );
            let s = uni / ws.makespan_us;
            assert!(s > 0.8 * workers as f64, "{workers} workers: near-linear, got {s:.2}");
        }
        // A single root fanning out lands every child on one worker's
        // deque: the other workers can only make progress by stealing.
        let fan = CycleTrace {
            cycle: 0,
            phase: Phase::Match,
            tasks: (0..100).map(|i| rec(i, (i > 0).then_some(0), 2, 0)).collect(),
        };
        let ws8 = simulate_cycle(&fan, &SimConfig::new(8, SimScheduler::WorkStealing));
        assert!(ws8.steals > 0, "steals recorded on an imbalanced DAG");
        assert_eq!(
            simulate_cycle(&t, &SimConfig::new(1, SimScheduler::WorkStealing)).steals,
            0,
            "uniprocessor never steals"
        );
    }

    #[test]
    fn deterministic() {
        let t = flat_trace(100);
        let a = simulate_cycle(&t, &SimConfig::new(5, SimScheduler::Multi));
        let b = simulate_cycle(&t, &SimConfig::new(5, SimScheduler::Multi));
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.queue_spins, b.queue_spins);
    }
}
