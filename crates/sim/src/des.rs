//! The discrete-event simulator: replay one cycle's task DAG on P virtual
//! Multimax processors.
//!
//! Each traced task becomes runnable when its parent pushes it; a worker
//! executes it as: pop (queue critical section) → memory-line critical
//! section → compute → push children (queue critical sections, which is
//! when the children become available). Locks are single-server resources
//! (`grant = max(now, lock_free)`); waiting is spinning, counted in spins.
//! The single-queue configuration additionally charges the idle-process
//! failed-pop interference the paper identifies at high process counts.

use crate::cost::CostModel;
use psme_obs::{ControlPhase, TraceKind, TraceLog, TraceRing, SESSION_NONE};
use psme_rete::{CycleTrace, TaskKind};
use std::time::Instant;

/// Queue organization (mirrors `psme_core::Scheduler`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimScheduler {
    /// One central task queue.
    Single,
    /// One queue per process, with cycling search over spin-locked queues.
    Multi,
    /// Per-process Chase–Lev deques: owner pops are lock-free, only steals
    /// serialize (on the victim's top CAS), children are published in one
    /// batch, and idle processes cause no failed-pop lock interference.
    WorkStealing,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Match processes (the paper sweeps 1–13).
    pub workers: usize,
    /// Queue organization.
    pub scheduler: SimScheduler,
    /// Cost model.
    pub cost: CostModel,
    /// Record the tasks-in-system timeline (Figure 6-6).
    pub timeline: bool,
}

impl SimConfig {
    /// Config with defaults for `workers` processes.
    pub fn new(workers: usize, scheduler: SimScheduler) -> SimConfig {
        SimConfig { workers, scheduler, cost: CostModel::default(), timeline: false }
    }
}

/// Result of simulating one cycle.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// Wall-clock of the cycle on the simulated machine (µs).
    pub makespan_us: f64,
    /// Tasks executed.
    pub tasks: u64,
    /// Total busy compute time across processes (µs).
    pub busy_us: f64,
    /// Total time spent waiting on queue locks (µs).
    pub queue_wait_us: f64,
    /// Queue-lock spins (wait / spin cost).
    pub queue_spins: u64,
    /// Total time waiting on memory-line locks (µs).
    pub line_wait_us: f64,
    /// Cross-queue takes: pops served from a queue other than the worker's
    /// own (steals under [`SimScheduler::WorkStealing`], cycling-search
    /// hits under [`SimScheduler::Multi`]).
    pub steals: u64,
    /// `(time_us, tasks_in_system)` samples when timeline recording is on.
    pub timeline: Vec<(f64, u32)>,
}

impl SimResult {
    /// Queue spins per task (Figure 6-3's metric).
    pub fn spins_per_task(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.queue_spins as f64 / self.tasks as f64
        }
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
struct Pending {
    avail: f64,
    seq: u32,
    idx: usize,
}

/// One executed task's placement on the simulated machine, recorded when
/// the caller wants a trace export.
#[derive(Clone, Copy, Debug)]
struct Placement {
    task: usize,
    worker: usize,
    /// Pop began (task was taken from a queue).
    start_us: f64,
    /// Pop finished (queue wait + queue op); execution proper starts here.
    exec_us: f64,
    /// Task fully done (children pushed).
    end_us: f64,
}

/// A single-server resource whose busy time is a set of intervals.
///
/// The greedy assignment loop executes a task's pushes at *future*
/// simulated times before other (earlier) tasks are assigned, so a simple
/// "next free time" scalar would wrongly block earlier operations behind
/// later ones. Interval bookkeeping lets an operation at time `t` take the
/// first gap at or after `t` that fits.
#[derive(Default, Debug)]
struct IntervalLock {
    /// Sorted, non-overlapping (start, end) busy intervals.
    intervals: Vec<(f64, f64)>,
}

impl IntervalLock {
    /// Acquire for `dur` at or after `t`; returns the grant time.
    fn acquire(&mut self, t: f64, dur: f64) -> f64 {
        if dur <= 0.0 {
            return t;
        }
        let mut g = t;
        let mut pos = self.intervals.partition_point(|&(_, e)| e <= t);
        while pos < self.intervals.len() {
            let (s, e) = self.intervals[pos];
            if g + dur <= s {
                break;
            }
            g = g.max(e);
            pos += 1;
        }
        // Insert (g, g+dur), coalescing with neighbours when contiguous.
        if pos > 0 && (self.intervals[pos - 1].1 - g).abs() < 1e-9 {
            self.intervals[pos - 1].1 = g + dur;
            // Possibly merge with the following interval.
            if pos < self.intervals.len() && (self.intervals[pos].0 - (g + dur)).abs() < 1e-9 {
                self.intervals[pos - 1].1 = self.intervals[pos].1;
                self.intervals.remove(pos);
            }
        } else if pos < self.intervals.len() && (self.intervals[pos].0 - (g + dur)).abs() < 1e-9 {
            self.intervals[pos].0 = g;
        } else {
            self.intervals.insert(pos, (g, g + dur));
        }
        g
    }
}

/// Simulate one cycle trace.
pub fn simulate_cycle(trace: &CycleTrace, cfg: &SimConfig) -> SimResult {
    simulate_cycle_inner(trace, cfg, None)
}

fn simulate_cycle_inner(
    trace: &CycleTrace,
    cfg: &SimConfig,
    mut placements: Option<&mut Vec<Placement>>,
) -> SimResult {
    let n = trace.tasks.len();
    let mut result = SimResult { tasks: n as u64, ..Default::default() };
    if n == 0 {
        return result;
    }
    let cost = &cfg.cost;
    let workers = cfg.workers.max(1);
    let nqueues = match cfg.scheduler {
        SimScheduler::Single => 1,
        SimScheduler::Multi | SimScheduler::WorkStealing => workers,
    };

    // Children lists (push order = trace order).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut is_seed = vec![true; n];
    for (i, t) in trace.tasks.iter().enumerate() {
        if let Some(p) = t.parent {
            children[p as usize].push(i);
            is_seed[i] = false;
        }
    }

    // Per-queue FIFO of pending tasks, ordered by (avail, seq).
    let mut queues: Vec<Vec<Pending>> = vec![Vec::new(); nqueues];
    let mut seq: u32 = 0;
    let enqueue = |queues: &mut Vec<Vec<Pending>>, q: usize, avail: f64, idx: usize, seq: &mut u32| {
        let p = Pending { avail, seq: *seq, idx };
        *seq += 1;
        // Insert keeping (avail, seq) order; pushes mostly arrive in
        // increasing avail so this is near-O(1).
        let pos = queues[q]
            .binary_search_by(|x| {
                (x.avail, x.seq).partial_cmp(&(p.avail, p.seq)).expect("no NaN")
            })
            .unwrap_or_else(|e| e);
        queues[q].insert(pos, p);
    };

    // Seeds are available at time 0, distributed round-robin (the control
    // process pushes the cycle's wme changes).
    {
        let mut k = 0usize;
        for (i, &s) in is_seed.iter().enumerate() {
            if s {
                enqueue(&mut queues, k % nqueues, 0.0, i, &mut seq);
                k += 1;
            }
        }
    }

    let mut worker_free = vec![0.0f64; workers];
    let mut queue_locks: Vec<IntervalLock> = (0..nqueues).map(|_| IntervalLock::default()).collect();
    let mut line_locks: std::collections::HashMap<u32, IntervalLock> = Default::default();
    let mut remaining = n;
    let mut spans: Vec<(f64, f64)> = if cfg.timeline { vec![(0.0, 0.0); n] } else { Vec::new() };
    let mut avail_time: Vec<f64> = vec![0.0; n];

    while remaining > 0 {
        // Pick the (worker, task) pair with the earliest possible start.
        // (start, seq, worker, queue) — seq breaks ties FIFO.
        let mut best: Option<(f64, u32, usize, usize)> = None;
        for (w, &t_free) in worker_free.iter().enumerate() {
            // Eligible task: own queue head first, else the earliest head
            // anywhere (stealing / cycling through other queues).
            let home = w % nqueues;
            let cand_q = if !queues[home].is_empty() {
                Some(home)
            } else {
                queues
                    .iter()
                    .enumerate()
                    .filter_map(|(q, queue)| queue.first().map(|p| (p.avail, p.seq, q)))
                    .min_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("no NaN"))
                    .map(|(_, _, q)| q)
            };
            if let Some(q) = cand_q {
                let p = queues[q][0];
                let start = t_free.max(p.avail);
                let better = match best {
                    None => true,
                    Some((bs, bseq, _, _)) => (start, p.seq) < (bs, bseq),
                };
                if better {
                    best = Some((start, p.seq, w, q));
                }
            }
        }
        let (start, _, w, q) = best.expect("tasks remain but none pending — trace DAG broken");
        let p = queues[q].remove(0);
        let t = &trace.tasks[p.idx];
        remaining -= 1;

        let mut now;
        if cfg.scheduler == SimScheduler::WorkStealing {
            if q == w % nqueues {
                // Owner pop: plain bottom decrement, no lock, no
                // interference from idle processes.
                now = start + cost.ws_owner_op;
            } else {
                // Steal: serializes on the victim's top CAS only.
                result.steals += 1;
                let grant = queue_locks[q].acquire(start, cost.ws_steal);
                result.queue_wait_us += grant - start;
                now = grant + cost.ws_steal;
            }
        } else {
            // Pop through the queue lock. Idle processes doing failed pops
            // interfere with real queue operations (§6.1) — but only
            // processes in excess of the currently available tasks are
            // actually spinning on empty queues.
            if q != w % nqueues {
                result.steals += 1;
            }
            let idle = worker_free.iter().filter(|&&f| f <= start).count().saturating_sub(1);
            let available: usize =
                queues.iter().map(|qq| qq.partition_point(|pp| pp.avail <= start)).sum();
            let idle_excess = idle.saturating_sub(available);
            let interference = idle_excess as f64 * cost.failed_pop_interference / nqueues as f64;
            let grant = queue_locks[q].acquire(start, cost.queue_op + interference);
            result.queue_wait_us += grant - start;
            now = grant + cost.queue_op + interference;
        }

        let pop_done = now;
        // Memory-line critical section.
        let (locked, after) = cost.body_cost(t);
        if t.kind != TaskKind::Alpha && locked > 0.0 {
            let line = t.line.unwrap_or(0);
            let lock = line_locks.entry(line).or_default();
            let lgrant = lock.acquire(now, locked);
            result.line_wait_us += lgrant - now;
            now = lgrant + locked;
        }
        now += after;

        // Push children; each becomes available at its push completion.
        // Under work stealing the whole brood is written and then published
        // with one release store, so every child becomes available at the
        // same instant and no lock is involved.
        if cfg.scheduler == SimScheduler::WorkStealing {
            if !children[p.idx].is_empty() {
                now += cost.ws_batch_publish
                    + cost.ws_owner_op * children[p.idx].len() as f64;
                for &c in &children[p.idx] {
                    avail_time[c] = now;
                    enqueue(&mut queues, w, now, c, &mut seq);
                }
            }
        } else {
            for &c in &children[p.idx] {
                let cq = match cfg.scheduler {
                    SimScheduler::Single => 0,
                    SimScheduler::Multi | SimScheduler::WorkStealing => w,
                };
                let pg = queue_locks[cq].acquire(now, cost.queue_op);
                result.queue_wait_us += pg - now;
                now = pg + cost.queue_op;
                avail_time[c] = now;
                enqueue(&mut queues, cq, now, c, &mut seq);
            }
        }
        // Busy time is the schedule-invariant per-task cost; waits and
        // failed-pop interference are accounted separately.
        result.busy_us += cost.total_cost(t, children[p.idx].len());
        worker_free[w] = now;
        result.makespan_us = result.makespan_us.max(now);
        if cfg.timeline {
            spans[p.idx] = (avail_time[p.idx], now);
        }
        if let Some(sink) = placements.as_deref_mut() {
            sink.push(Placement {
                task: p.idx,
                worker: w,
                start_us: start,
                exec_us: pop_done,
                end_us: now,
            });
        }
    }
    result.queue_spins = (result.queue_wait_us / cost.spin) as u64;

    if cfg.timeline {
        // Tasks-in-system over time (available + running), sampled at
        // 100 µs — the paper's Figure 6-6 time unit.
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(2 * n);
        for &(a, e) in &spans {
            events.push((a, 1));
            events.push((e, -1));
        }
        events.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN"));
        let mut level = 0i32;
        let mut ei = 0usize;
        let step = 100.0;
        let mut t = 0.0;
        while t <= result.makespan_us + step {
            while ei < events.len() && events[ei].0 <= t {
                level += events[ei].1;
                ei += 1;
            }
            result.timeline.push((t, level.max(0) as u32));
            t += step;
        }
    }
    result
}

/// Simulate a whole run (synchronous cycles: total = sum of makespans).
pub fn simulate_run(traces: &[CycleTrace], cfg: &SimConfig) -> Vec<SimResult> {
    traces.iter().map(|t| simulate_cycle(t, cfg)).collect()
}

/// Simulate one cycle and also emit the serving-layer event stream
/// ([`psme_obs::TraceKind`]) stamped with *virtual* nanoseconds: one
/// `SliceStart`/`SliceEnd` pair per executed task on its worker's track
/// (`session` = task id, `cycle_lo` = beta node), so a simulated cycle
/// exports through the identical Chrome-trace path as a captured run.
pub fn simulate_cycle_traced(trace: &CycleTrace, cfg: &SimConfig) -> (SimResult, TraceLog) {
    let mut log = TraceLog::default();
    let result = sim_cycle_into(trace, cfg, 0, 0.0, &mut log);
    log.seal();
    (result, log)
}

/// [`simulate_run`] with a merged event stream across cycles: each cycle's
/// virtual clock is offset by the preceding makespans (synchronous cycles)
/// and bracketed by `PhaseBegin`/`PhaseEnd(Match)` on the control track.
pub fn simulate_run_traced(traces: &[CycleTrace], cfg: &SimConfig) -> (Vec<SimResult>, TraceLog) {
    let mut log = TraceLog::default();
    let mut offset_us = 0.0;
    let mut results = Vec::with_capacity(traces.len());
    for (cycle, t) in traces.iter().enumerate() {
        let r = sim_cycle_into(t, cfg, cycle as u64, offset_us, &mut log);
        offset_us += r.makespan_us;
        results.push(r);
    }
    log.seal();
    (results, log)
}

/// Run one cycle, appending its events (offset by `offset_us`) to `log`.
fn sim_cycle_into(
    trace: &CycleTrace,
    cfg: &SimConfig,
    cycle: u64,
    offset_us: f64,
    log: &mut TraceLog,
) -> SimResult {
    let mut placements = Vec::with_capacity(trace.tasks.len());
    let result = simulate_cycle_inner(trace, cfg, Some(&mut placements));
    let workers = cfg.workers.max(1);
    let ns = |us: f64| ((offset_us + us) * 1e3).round() as u64;
    let origin = Instant::now();
    // Sized to hold every event: two per task, worst case all on one worker.
    let cap = 2 * trace.tasks.len() + 1;
    let mut rings: Vec<TraceRing> =
        (0..workers).map(|w| TraceRing::new(w as u32, cap, origin)).collect();
    let mut ctl = TraceRing::new(workers as u32, 4, origin);
    ctl.emit_at(ns(0.0), TraceKind::PhaseBegin(ControlPhase::Match), SESSION_NONE, cycle, cycle, 0);
    for p in &placements {
        let node = trace.tasks[p.task].node as u64;
        rings[p.worker].emit_at(
            ns(p.start_us),
            TraceKind::SliceStart,
            p.task as u32,
            node,
            node,
            ((p.exec_us - p.start_us) * 1e3).round() as u64,
        );
        rings[p.worker].emit_at(
            ns(p.end_us),
            TraceKind::SliceEnd,
            p.task as u32,
            node,
            node,
            ((p.end_us - p.exec_us) * 1e3).round() as u64,
        );
    }
    ctl.emit_at(
        ns(result.makespan_us),
        TraceKind::PhaseEnd(ControlPhase::Match),
        SESSION_NONE,
        cycle,
        cycle,
        (result.makespan_us * 1e3).round() as u64,
    );
    log.absorb(&mut ctl);
    for ring in &mut rings {
        log.absorb(ring);
    }
    result
}

/// Total simulated time of a run in seconds.
pub fn total_seconds(results: &[SimResult]) -> f64 {
    results.iter().map(|r| r.makespan_us).sum::<f64>() / 1e6
}

/// Speedup of `par` relative to `uni` (same traces, different configs).
pub fn speedup(uni: &[SimResult], par: &[SimResult]) -> f64 {
    total_seconds(uni) / total_seconds(par).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_rete::{CycleTrace, Phase, Side, TaskRecord};

    fn rec(id: u32, parent: Option<u32>, scanned: u32, emitted: u32) -> TaskRecord {
        TaskRecord {
            id,
            parent,
            node: 1,
            kind: TaskKind::Join,
            side: Some(Side::Left),
            delta: 1,
            scanned,
            hash_rejects: 0,
            skipped: 0,
            probes: 0,
            emitted,
            line: Some(id % 64),
            acquires: 1,
            wall_ns: 0,
        }
    }

    fn flat_trace(n: u32) -> CycleTrace {
        CycleTrace { cycle: 0, phase: Phase::Match, tasks: (0..n).map(|i| rec(i, None, 2, 0)).collect() }
    }

    fn chain_trace(n: u32) -> CycleTrace {
        CycleTrace {
            cycle: 0,
            phase: Phase::Match,
            tasks: (0..n).map(|i| rec(i, i.checked_sub(1), 2, 1)).collect(),
        }
    }

    #[test]
    fn independent_tasks_scale_until_queue_saturates() {
        let t = flat_trace(400);
        let uni = simulate_cycle(&t, &SimConfig::new(1, SimScheduler::Single)).makespan_us;
        let p8 = simulate_cycle(&t, &SimConfig::new(8, SimScheduler::Single)).makespan_us;
        let s8 = uni / p8;
        assert!(s8 > 5.0, "8 workers on independent equal tasks: {s8}");
        let multi = simulate_cycle(&t, &SimConfig::new(8, SimScheduler::Multi)).makespan_us;
        assert!(uni / multi > 6.0, "multi queue: {}", uni / multi);
    }

    #[test]
    fn pure_chain_never_speeds_up() {
        let t = chain_trace(100);
        let uni = simulate_cycle(&t, &SimConfig::new(1, SimScheduler::Multi)).makespan_us;
        let p8 = simulate_cycle(&t, &SimConfig::new(8, SimScheduler::Multi)).makespan_us;
        let s = uni / p8;
        assert!(s < 1.2, "chain cannot parallelize: {s}");
    }

    #[test]
    fn work_stealing_scales_at_least_as_well_as_locked_queues() {
        let t = flat_trace(400);
        let uni = simulate_cycle(&t, &SimConfig::new(1, SimScheduler::WorkStealing)).makespan_us;
        for workers in [4usize, 8, 13] {
            let ws = simulate_cycle(&t, &SimConfig::new(workers, SimScheduler::WorkStealing));
            let single =
                simulate_cycle(&t, &SimConfig::new(workers, SimScheduler::Single)).makespan_us;
            assert!(
                ws.makespan_us <= single,
                "{workers} workers: ws {} vs single {single}",
                ws.makespan_us
            );
            let s = uni / ws.makespan_us;
            assert!(s > 0.8 * workers as f64, "{workers} workers: near-linear, got {s:.2}");
        }
        // A single root fanning out lands every child on one worker's
        // deque: the other workers can only make progress by stealing.
        let fan = CycleTrace {
            cycle: 0,
            phase: Phase::Match,
            tasks: (0..100).map(|i| rec(i, (i > 0).then_some(0), 2, 0)).collect(),
        };
        let ws8 = simulate_cycle(&fan, &SimConfig::new(8, SimScheduler::WorkStealing));
        assert!(ws8.steals > 0, "steals recorded on an imbalanced DAG");
        assert_eq!(
            simulate_cycle(&t, &SimConfig::new(1, SimScheduler::WorkStealing)).steals,
            0,
            "uniprocessor never steals"
        );
    }

    #[test]
    fn deterministic() {
        let t = flat_trace(100);
        let a = simulate_cycle(&t, &SimConfig::new(5, SimScheduler::Multi));
        let b = simulate_cycle(&t, &SimConfig::new(5, SimScheduler::Multi));
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.queue_spins, b.queue_spins);
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_every_task() {
        let traces = [flat_trace(40), chain_trace(10)];
        let cfg = SimConfig::new(4, SimScheduler::WorkStealing);
        let plain = simulate_run(&traces, &cfg);
        let (traced, log) = simulate_run_traced(&traces, &cfg);
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.makespan_us, b.makespan_us, "tracing must not perturb the schedule");
        }
        assert!(log.is_sorted());
        assert_eq!(log.dropped, 0);
        let n_tasks: usize = traces.iter().map(|t| t.tasks.len()).sum();
        let starts = log.events.iter().filter(|e| e.kind == TraceKind::SliceStart).count();
        let ends = log.events.iter().filter(|e| e.kind == TraceKind::SliceEnd).count();
        assert_eq!(starts, n_tasks);
        assert_eq!(ends, n_tasks);
        // One Match phase bracket per cycle, on the control track.
        let begins: Vec<_> = log
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::PhaseBegin(ControlPhase::Match))
            .collect();
        assert_eq!(begins.len(), traces.len());
        assert!(begins.iter().all(|e| e.worker == 4 && e.session == SESSION_NONE));
        // Cycle 1's events sit after cycle 0's makespan (virtual offset).
        let c0_end_ns = (plain[0].makespan_us * 1e3).round() as u64;
        let c1_start = begins.iter().find(|e| e.cycle_lo == 1).expect("cycle 1 bracket");
        assert_eq!(c1_start.t_ns, c0_end_ns);
        // Chrome export of the merged simulated run parses.
        let chrome = log.chrome_json().to_string();
        assert!(psme_obs::Json::parse(&chrome).is_ok());
    }
}
