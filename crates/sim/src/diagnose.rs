//! Automatic diagnosis of low speedups — the paper's §7 proposal:
//! "A possible avenue of investigation is to equip the system with
//! diagnostic tools to automatically deduce the causes of the low speedups.
//! For example, to identify long chains, the system can look at the last
//! few node activations on the cycles with low parallelism. The system can
//! then make adaptive changes, such as introducing bilinear networks, to
//! increase the speedups."
//!
//! [`diagnose_cycle`] computes the critical (longest dependent) path of a
//! cycle's task DAG under the cost model, classifies the cycle, and
//! attributes chain dominance to the nodes on the path so the caller can
//! reorganize the offending productions bilinearly.

use crate::cost::CostModel;
use psme_rete::{CycleTrace, NodeId};

/// Why a cycle cannot speed up.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bottleneck {
    /// Too few tasks to amortize per-cycle overhead ("small cycles").
    SmallCycle,
    /// A dependent activation chain dominates the cycle ("long chains").
    LongChain,
    /// Work is plentiful and well-shaped; queues/locks are the limit.
    Contention,
}

/// Diagnosis of one cycle.
#[derive(Clone, Debug)]
pub struct CycleDiagnosis {
    /// Total tasks in the cycle.
    pub tasks: usize,
    /// Total compute in the cycle (µs, uncontended).
    pub total_us: f64,
    /// Cost of the critical path (µs).
    pub critical_path_us: f64,
    /// Number of tasks on the critical path.
    pub critical_path_len: usize,
    /// Upper bound on speedup from the DAG shape alone.
    pub max_parallelism: f64,
    /// Classification.
    pub bottleneck: Bottleneck,
    /// Beta nodes on the critical path, deduplicated, busiest first —
    /// the candidates for bilinear reorganization.
    pub chain_nodes: Vec<NodeId>,
}

/// Tasks below this count classify as a small cycle.
pub const SMALL_CYCLE_TASKS: usize = 20;

/// Chain share of total work above which a cycle is chain-bound.
pub const CHAIN_DOMINANCE: f64 = 0.35;

/// Analyze one cycle's task DAG.
pub fn diagnose_cycle(trace: &CycleTrace, cost: &CostModel) -> CycleDiagnosis {
    let n = trace.tasks.len();
    let mut children_count = vec![0usize; n];
    for t in &trace.tasks {
        if let Some(p) = t.parent {
            children_count[p as usize] += 1;
        }
    }
    // Longest path ending at each task (tasks are topologically ordered:
    // parents precede children in the trace).
    let mut total = 0.0f64;
    let mut path_cost = vec![0.0f64; n];
    let mut path_len = vec![0usize; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut best_end = 0usize;
    for (i, t) in trace.tasks.iter().enumerate() {
        let c = cost.total_cost(t, children_count[i]);
        total += c;
        let (base_cost, base_len, from) = match t.parent {
            Some(p) => (path_cost[p as usize], path_len[p as usize], Some(p as usize)),
            None => (0.0, 0, None),
        };
        path_cost[i] = base_cost + c;
        path_len[i] = base_len + 1;
        pred[i] = from;
        if path_cost[i] > path_cost[best_end] {
            best_end = i;
        }
    }
    let critical = if n == 0 { 0.0 } else { path_cost[best_end] };
    let max_parallelism = if critical > 0.0 { total / critical } else { 1.0 };

    // Walk the critical path collecting its beta nodes, weighted by cost.
    let mut node_cost: std::collections::HashMap<NodeId, f64> = Default::default();
    let mut cur = if n == 0 { None } else { Some(best_end) };
    while let Some(i) = cur {
        let t = &trace.tasks[i];
        if t.node != 0 {
            *node_cost.entry(t.node).or_insert(0.0) += cost.total_cost(t, children_count[i]);
        }
        cur = pred[i];
    }
    let mut chain_nodes: Vec<(NodeId, f64)> = node_cost.into_iter().collect();
    chain_nodes.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));

    let bottleneck = if n < SMALL_CYCLE_TASKS {
        Bottleneck::SmallCycle
    } else if critical / total.max(1e-9) > CHAIN_DOMINANCE {
        Bottleneck::LongChain
    } else {
        Bottleneck::Contention
    };
    CycleDiagnosis {
        tasks: n,
        total_us: total,
        critical_path_us: critical,
        critical_path_len: if n == 0 { 0 } else { path_len[best_end] },
        max_parallelism,
        bottleneck,
        chain_nodes: chain_nodes.into_iter().map(|(id, _)| id).collect(),
    }
}

/// Summary over a whole run: how much of the total work sits in each
/// bottleneck class, plus the most chain-implicated nodes.
#[derive(Clone, Debug, Default)]
pub struct RunDiagnosis {
    /// Work (µs) in small cycles.
    pub small_cycle_us: f64,
    /// Work in chain-bound cycles.
    pub long_chain_us: f64,
    /// Work in well-shaped cycles.
    pub parallel_us: f64,
    /// Chain-implicated nodes, most frequent first.
    pub suspects: Vec<(NodeId, u32)>,
}

/// Diagnose every cycle of a run.
pub fn diagnose_run(traces: &[CycleTrace], cost: &CostModel) -> RunDiagnosis {
    let mut out = RunDiagnosis::default();
    let mut counts: std::collections::HashMap<NodeId, u32> = Default::default();
    for t in traces {
        let d = diagnose_cycle(t, cost);
        match d.bottleneck {
            Bottleneck::SmallCycle => out.small_cycle_us += d.total_us,
            Bottleneck::LongChain => {
                out.long_chain_us += d.total_us;
                for n in d.chain_nodes.iter().take(5) {
                    *counts.entry(*n).or_insert(0) += 1;
                }
            }
            Bottleneck::Contention => out.parallel_us += d.total_us,
        }
    }
    let mut suspects: Vec<(NodeId, u32)> = counts.into_iter().collect();
    suspects.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out.suspects = suspects;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psme_rete::{Phase, Side, TaskKind, TaskRecord};

    fn rec(id: u32, parent: Option<u32>, node: NodeId) -> TaskRecord {
        TaskRecord {
            id,
            parent,
            node,
            kind: TaskKind::Join,
            side: Some(Side::Left),
            delta: 1,
            scanned: 1,
            hash_rejects: 0,
            skipped: 0,
            probes: 0,
            emitted: 1,
            line: Some(0),
            acquires: 1,
            wall_ns: 0,
        }
    }

    fn cycle(tasks: Vec<TaskRecord>) -> CycleTrace {
        CycleTrace { cycle: 0, phase: Phase::Match, tasks }
    }

    #[test]
    fn small_cycles_classified() {
        let t = cycle((0..5).map(|i| rec(i, None, 1)).collect());
        let d = diagnose_cycle(&t, &CostModel::default());
        assert_eq!(d.bottleneck, Bottleneck::SmallCycle);
        assert_eq!(d.tasks, 5);
    }

    #[test]
    fn chains_detected_with_their_nodes() {
        // A 40-task chain through nodes 10..50 plus 10 independent tasks.
        let mut tasks: Vec<TaskRecord> =
            (0..40).map(|i| rec(i, i.checked_sub(1), 10 + i)).collect();
        for i in 40..50 {
            tasks.push(rec(i, None, 1));
        }
        let d = diagnose_cycle(&cycle(tasks), &CostModel::default());
        assert_eq!(d.bottleneck, Bottleneck::LongChain);
        assert_eq!(d.critical_path_len, 40);
        assert!(d.max_parallelism < 2.0, "{}", d.max_parallelism);
        assert!(d.chain_nodes.len() >= 40);
        assert!(d.chain_nodes.iter().all(|&n| (10..50).contains(&n)));
    }

    #[test]
    fn wide_cycles_classified_as_contention_bound() {
        let t = cycle((0..200).map(|i| rec(i, None, 2)).collect());
        let d = diagnose_cycle(&t, &CostModel::default());
        assert_eq!(d.bottleneck, Bottleneck::Contention);
        assert!(d.max_parallelism > 100.0);
    }

    #[test]
    fn run_diagnosis_aggregates() {
        let chain = cycle((0..40).map(|i| rec(i, i.checked_sub(1), 7)).collect());
        let wide = cycle((0..100).map(|i| rec(i, None, 2)).collect());
        let small = cycle((0..3).map(|i| rec(i, None, 3)).collect());
        let d = diagnose_run(&[chain, wide, small], &CostModel::default());
        assert!(d.long_chain_us > 0.0);
        assert!(d.parallel_us > d.small_cycle_us);
        assert_eq!(d.suspects.first().map(|s| s.0), Some(7));
    }
}
