//! # psme-sim — the Encore Multimax simulator
//!
//! The paper's hardware substrate — a 16-processor NS32032 Encore Multimax
//! — simulated as a deterministic discrete-event system (see DESIGN.md §3:
//! this host has a single CPU core, so real 13-process wall-clock speedups
//! cannot be measured; the simulator replays the serial engine's task
//! traces under a calibrated cost model instead).
//!
//! * [`cost`] — the NS32032 cost model (≈400 µs average task, Table 6-1);
//! * [`des`] — P virtual match processes, single or per-process task
//!   queues, queue/line locks as single-server resources, idle-process
//!   failed-pop interference, and task-DAG dependencies from the trace.
//!
//! Everything the paper measures falls out: per-cycle makespans → speedups
//! (Figures 6-1/6-4/6-9/6-10), queue-lock spins per task (Figure 6-3),
//! per-cycle speedup vs tasks/cycle (Figure 6-5), and the tasks-in-system
//! timeline inside one cycle (Figure 6-6).

pub mod cost;
pub mod des;
pub mod diagnose;

pub use cost::CostModel;
pub use diagnose::{diagnose_cycle, diagnose_run, Bottleneck, CycleDiagnosis, RunDiagnosis};
pub use des::{simulate_cycle, simulate_run, speedup, total_seconds, SimConfig, SimResult, SimScheduler};
