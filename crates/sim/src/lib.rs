//! # psme-sim — the Encore Multimax simulator
//!
//! The paper's hardware substrate — a 16-processor NS32032 Encore Multimax
//! — simulated as a deterministic discrete-event system (see DESIGN.md §3:
//! this host has a single CPU core, so real 13-process wall-clock speedups
//! cannot be measured; the simulator replays the serial engine's task
//! traces under a calibrated cost model instead).
//!
//! * [`cost`] — the NS32032 cost model (≈400 µs average task, Table 6-1);
//! * [`des`] — P virtual match processes, single or per-process task
//!   queues, queue/line locks as single-server resources, idle-process
//!   failed-pop interference, and task-DAG dependencies from the trace.
//!
//! Everything the paper measures falls out: per-cycle makespans → speedups
//! (Figures 6-1/6-4/6-9/6-10), queue-lock spins per task (Figure 6-3),
//! per-cycle speedup vs tasks/cycle (Figure 6-5), and the tasks-in-system
//! timeline inside one cycle (Figure 6-6).

pub mod cost;
pub mod des;
pub mod diagnose;

pub use cost::CostModel;
pub use diagnose::{diagnose_cycle, diagnose_run, Bottleneck, CycleDiagnosis, RunDiagnosis};
pub use des::{
    simulate_cycle, simulate_cycle_traced, simulate_run, simulate_run_traced, speedup,
    total_seconds, SimConfig, SimResult, SimScheduler,
};

use psme_obs::NodeProfiler;
use psme_rete::CycleTrace;

/// Per-node simulated-time breakdown: fold a run's traces into a
/// [`NodeProfiler`], attributing each task its [`CostModel`] cost. The
/// result answers the §6 question "where does the simulated machine spend
/// its time" node by node — `profiler.report(&net, k)` then names the
/// hottest nodes' productions.
pub fn profile_run(traces: &[CycleTrace], cost: &CostModel) -> NodeProfiler {
    let mut p = NodeProfiler::new();
    p.ingest_run(traces, |t, children| cost.total_cost(t, children));
    p
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use psme_rete::{Phase, Side, TaskKind, TaskRecord};

    #[test]
    fn per_node_costs_sum_to_per_task_costs() {
        let mk = |id: u32, parent: Option<u32>, node: u32, kind: TaskKind| TaskRecord {
            id,
            parent,
            node,
            kind,
            side: Some(Side::Left),
            delta: 1,
            scanned: 3,
            hash_rejects: 0,
            skipped: 0,
            probes: 0,
            emitted: if kind == TaskKind::Prod { 0 } else { 1 },
            line: Some(node % 8),
            acquires: if kind == TaskKind::Alpha { 0 } else { 1 },
            wall_ns: 0,
        };
        let trace = CycleTrace {
            cycle: 0,
            phase: Phase::Match,
            tasks: vec![
                mk(0, None, 0, TaskKind::Alpha),
                mk(1, Some(0), 4, TaskKind::Join),
                mk(2, Some(1), 9, TaskKind::Prod),
            ],
        };
        let cost = CostModel::default();
        let p = profile_run(std::slice::from_ref(&trace), &cost);
        // Each task has exactly one child here except the leaf.
        let expected: f64 = cost.total_cost(&trace.tasks[0], 1)
            + cost.total_cost(&trace.tasks[1], 1)
            + cost.total_cost(&trace.tasks[2], 0);
        assert!((p.total_cost_us() - expected).abs() < 1e-9);
        // The same total the simulator charges as busy time.
        let sim = simulate_cycle(&trace, &SimConfig::new(2, SimScheduler::Multi));
        assert!((sim.busy_us - expected).abs() < 1e-9);
        assert_eq!(p.cycles, 1);
        assert_eq!(p.tasks, 3);
    }
}
