//! Property-based tests for the Multimax simulator: scheduling laws that
//! must hold for any task DAG, worker count and queue organization.

use proptest::prelude::*;
use psme_rete::{CycleTrace, Phase, Side, TaskKind, TaskRecord};
use psme_sim::{simulate_cycle, CostModel, SimConfig, SimScheduler};

/// Build a random but well-formed task DAG: each task's parent precedes it.
fn dag_strategy() -> impl Strategy<Value = CycleTrace> {
    (1usize..120, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = psme_rete::testgen::XorShift::new(seed);
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n {
            let parent = if i == 0 || rng.chance(25) {
                None
            } else {
                Some(rng.below(i) as u32)
            };
            let kind = match rng.below(4) {
                0 => TaskKind::Alpha,
                1 => TaskKind::Neg,
                2 => TaskKind::Prod,
                _ => TaskKind::Join,
            };
            tasks.push(TaskRecord {
                id: i as u32,
                parent,
                node: rng.below(40) as u32 + 1,
                kind,
                side: Some(if rng.chance(50) { Side::Left } else { Side::Right }),
                delta: if rng.chance(80) { 1 } else { -1 },
                scanned: rng.below(8) as u32,
                hash_rejects: if kind == TaskKind::Alpha { 0 } else { rng.below(3) as u32 },
                skipped: if kind == TaskKind::Alpha { 0 } else { rng.below(5) as u32 },
                probes: if kind == TaskKind::Alpha { rng.below(3) as u32 } else { 0 },
                emitted: rng.below(4) as u32,
                line: Some(rng.below(16) as u32),
                acquires: if kind == TaskKind::Alpha { 0 } else { 1 },
                wall_ns: 0,
            });
        }
        CycleTrace { cycle: 0, phase: Phase::Match, tasks }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Work law: P processors cannot beat total-work / P; and one processor
    /// takes exactly the total work (no contention possible).
    #[test]
    fn work_law_holds(trace in dag_strategy(), workers in 1usize..16) {
        let cfg = SimConfig::new(workers, SimScheduler::Multi);
        let r = simulate_cycle(&trace, &cfg);
        prop_assert!(r.makespan_us + 1e-6 >= r.busy_us / workers as f64,
            "makespan {} < busy {} / {}", r.makespan_us, r.busy_us, workers);
        let uni = simulate_cycle(&trace, &SimConfig::new(1, SimScheduler::Multi));
        prop_assert!((uni.makespan_us - uni.busy_us).abs() < 1e-6 + uni.makespan_us * 1e-9,
            "uniprocessor time {} == busy time {}", uni.makespan_us, uni.busy_us);
    }

    /// Speedup never exceeds the worker count.
    #[test]
    fn speedup_bounded_by_workers(trace in dag_strategy(), workers in 2usize..16,
                                  single in any::<bool>()) {
        let sched = if single { SimScheduler::Single } else { SimScheduler::Multi };
        let uni = simulate_cycle(&trace, &SimConfig::new(1, sched)).makespan_us;
        let par = simulate_cycle(&trace, &SimConfig::new(workers, sched)).makespan_us;
        prop_assert!(uni / par <= workers as f64 + 1e-6, "speedup {} > {}", uni / par, workers);
    }

    /// The simulator is deterministic.
    #[test]
    fn deterministic(trace in dag_strategy(), workers in 1usize..16) {
        let cfg = SimConfig::new(workers, SimScheduler::Single);
        let a = simulate_cycle(&trace, &cfg);
        let b = simulate_cycle(&trace, &cfg);
        prop_assert_eq!(a.makespan_us, b.makespan_us);
        prop_assert_eq!(a.queue_spins, b.queue_spins);
        prop_assert_eq!(a.busy_us, b.busy_us);
    }

    /// Every task is executed exactly once: total busy time equals the sum
    /// of per-task costs regardless of the schedule.
    #[test]
    fn busy_time_is_schedule_invariant(trace in dag_strategy(), w1 in 1usize..16, w2 in 1usize..16) {
        let a = simulate_cycle(&trace, &SimConfig::new(w1, SimScheduler::Multi));
        let b = simulate_cycle(&trace, &SimConfig::new(w2, SimScheduler::Single));
        prop_assert!((a.busy_us - b.busy_us).abs() < 1e-6,
            "busy {} vs {}", a.busy_us, b.busy_us);
        prop_assert_eq!(a.tasks, trace.tasks.len() as u64);
        prop_assert_eq!(b.tasks, trace.tasks.len() as u64);
    }

    /// Cheaper queue operations never make a cycle slower (monotonicity in
    /// the cost model, interference disabled).
    #[test]
    fn queue_cost_monotonicity(trace in dag_strategy(), workers in 1usize..14) {
        let mut cheap = SimConfig::new(workers, SimScheduler::Single);
        cheap.cost = CostModel { queue_op: 5.0, failed_pop_interference: 0.0, ..CostModel::default() };
        let mut costly = cheap;
        costly.cost.queue_op = 60.0;
        let a = simulate_cycle(&trace, &cheap).makespan_us;
        let b = simulate_cycle(&trace, &costly).makespan_us;
        prop_assert!(a <= b + 1e-6, "cheap {} > costly {}", a, b);
    }

    /// The timeline, when recorded, starts and ends at zero tasks in
    /// system and peaks at least once for non-empty traces.
    #[test]
    fn timeline_is_well_formed(trace in dag_strategy()) {
        let mut cfg = SimConfig::new(4, SimScheduler::Multi);
        cfg.timeline = true;
        let r = simulate_cycle(&trace, &cfg);
        prop_assert!(!r.timeline.is_empty());
        prop_assert_eq!(r.timeline.last().unwrap().1, 0, "drains to zero");
        prop_assert!(r.timeline.iter().any(|&(_, n)| n > 0), "has work in flight");
    }
}
