//! The simulator must reproduce the qualitative shapes of §6 when fed real
//! traces from the serial engine running the paper's tasks.

use psme_rete::{CycleTrace, NetworkOrg, Phase, ReteNetwork, SerialEngine};
use psme_sim::{simulate_cycle, simulate_run, total_seconds, SimConfig, SimScheduler};
use psme_tasks::{eight_puzzle, run_serial, scrambled, RunMode};
use std::sync::Arc;

fn eight_puzzle_traces() -> Vec<CycleTrace> {
    let task = eight_puzzle(&scrambled(4, 11));
    let (report, engine) = run_serial(&task, RunMode::WithoutChunking, true);
    assert_eq!(report.stop, psme_soar::StopReason::Halted);
    engine.trace.cycles
}

fn run_speedup(traces: &[CycleTrace], workers: usize, sched: SimScheduler) -> f64 {
    let uni = simulate_run(traces, &SimConfig::new(1, sched));
    let par = simulate_run(traces, &SimConfig::new(workers, sched));
    total_seconds(&uni) / total_seconds(&par)
}

#[test]
fn one_worker_speedup_is_unity() {
    let traces = eight_puzzle_traces();
    let s = run_speedup(&traces, 1, SimScheduler::Single);
    assert!((s - 1.0).abs() < 1e-9);
}

#[test]
fn single_queue_saturates_and_dips() {
    // Figure 6-1: "the speedups in all three tasks are fairly low: the
    // maximum speedup is about 4.2 fold. In fact, the speedup decreases
    // with more than 9 match processes."
    let traces = eight_puzzle_traces();
    let s4 = run_speedup(&traces, 4, SimScheduler::Single);
    let s8 = run_speedup(&traces, 8, SimScheduler::Single);
    let s13 = run_speedup(&traces, 13, SimScheduler::Single);
    assert!(s4 > 1.5, "s4 = {s4}");
    assert!(s8 <= 6.0, "single queue caps low: s8 = {s8}");
    assert!(s13 < s8 * 1.05, "dip or saturation at 13: s13 = {s13}, s8 = {s8}");
}

#[test]
fn multi_queue_beats_single_queue() {
    // Figure 6-4: "parallelism has increased in all three tasks".
    let traces = eight_puzzle_traces();
    let single = run_speedup(&traces, 13, SimScheduler::Single);
    let multi = run_speedup(&traces, 13, SimScheduler::Multi);
    assert!(
        multi > single,
        "multi-queue {multi} should beat single-queue {single}"
    );
}

#[test]
fn queue_spins_grow_with_processes_on_single_queue() {
    // Figure 6-3.
    let traces = eight_puzzle_traces();
    let spins = |w: usize| {
        let rs = simulate_run(&traces, &SimConfig::new(w, SimScheduler::Single));
        let tasks: u64 = rs.iter().map(|r| r.tasks).sum();
        let total: u64 = rs.iter().map(|r| r.queue_spins).sum();
        total as f64 / tasks.max(1) as f64
    };
    let s3 = spins(3);
    let s13 = spins(13);
    assert!(s13 > s3 * 2.0, "spins/task grows: {s3} → {s13}");

    // And multiple queues bring it back down ("the number of spins/task has
    // reduced to about 2-3").
    let rs = simulate_run(&traces, &SimConfig::new(13, SimScheduler::Multi));
    let tasks: u64 = rs.iter().map(|r| r.tasks).sum();
    let multi13 = rs.iter().map(|r| r.queue_spins).sum::<u64>() as f64 / tasks as f64;
    assert!(multi13 < s13, "multi {multi13} < single {s13}");
}

#[test]
fn long_chains_limit_speedup() {
    // §6.2: a production with a long dependent chain cannot go faster than
    // its chain. Build a 30-CE chain, trace its single big cycle, and
    // verify the simulated speedup stays far below the processor count,
    // while a wide independent workload scales much better.
    let mut classes = psme_ops::ClassRegistry::new();
    let chain = psme_rete::testgen::long_chain(&mut classes, 30, "deep-chain");
    let mut net = ReteNetwork::new();
    net.add_production(Arc::new(chain), NetworkOrg::Linear).unwrap();
    let mut eng = SerialEngine::new(net);
    // Preload everything but the chain's anchor…
    let mut wmes = psme_rete::testgen::chain_wmes(&classes, 30);
    let anchor = wmes.remove(0);
    eng.apply_changes(wmes, vec![]);
    // …then trace the cycle where the anchor arrives: the whole chain of
    // dependent activations rebuilds sequentially (the paper's Figure 6-6
    // tail: "it cannot get through the long chain any faster").
    eng.capture = true;
    eng.apply_changes(vec![anchor], vec![]);
    let chain_trace = &eng.trace.cycles[0];
    assert!(chain_trace.tasks.len() >= 30);
    let uni = simulate_cycle(chain_trace, &SimConfig::new(1, SimScheduler::Multi));
    let par = simulate_cycle(chain_trace, &SimConfig::new(11, SimScheduler::Multi));
    let chain_speedup = uni.makespan_us / par.makespan_us;
    assert!(chain_speedup < 4.0, "long chain speedup only {chain_speedup}");

    // Wide workload: many independent productions all firing at once.
    let mut classes2 = psme_ops::ClassRegistry::new();
    classes2.declare_str("w", &["k", "v"]);
    let mut net2 = ReteNetwork::new();
    for i in 0..40 {
        let p = psme_ops::parse_production(
            &format!("(p wide-{i} (w ^k {i} ^v <x>) (w ^k {i} ^v <x>) --> (halt))"),
            &mut classes2,
        )
        .unwrap();
        net2.add_production(Arc::new(p), NetworkOrg::Linear).unwrap();
    }
    let mut eng2 = SerialEngine::new(net2);
    eng2.capture = true;
    let adds: Vec<_> = (0..40)
        .map(|i| psme_ops::parse_wme(&format!("(w ^k {i} ^v 1)"), &classes2).unwrap())
        .collect();
    eng2.apply_changes(adds, vec![]);
    let wide_trace = &eng2.trace.cycles[0];
    let uni2 = simulate_cycle(wide_trace, &SimConfig::new(1, SimScheduler::Multi));
    let par2 = simulate_cycle(wide_trace, &SimConfig::new(11, SimScheduler::Multi));
    let wide_speedup = uni2.makespan_us / par2.makespan_us;
    assert!(
        wide_speedup > chain_speedup,
        "wide {wide_speedup} > chain {chain_speedup}"
    );
}

#[test]
fn small_cycles_get_low_speedup() {
    // Figure 6-5's left side: cycles with few tasks cannot amortize the
    // per-cycle overhead.
    let traces = eight_puzzle_traces();
    let cfg1 = SimConfig::new(1, SimScheduler::Multi);
    let cfg11 = SimConfig::new(11, SimScheduler::Multi);
    let mut small = Vec::new();
    let mut large = Vec::new();
    for t in &traces {
        if t.tasks.is_empty() {
            continue;
        }
        let s = simulate_cycle(t, &cfg1).makespan_us / simulate_cycle(t, &cfg11).makespan_us;
        if t.tasks.len() < 20 {
            small.push(s);
        } else if t.tasks.len() > 100 {
            large.push(s);
        }
    }
    assert!(!small.is_empty());
    let avg_small = small.iter().sum::<f64>() / small.len() as f64;
    assert!(avg_small < 3.0, "small cycles speedup {avg_small}");
    if !large.is_empty() {
        let avg_large = large.iter().sum::<f64>() / large.len() as f64;
        assert!(avg_large > avg_small, "large {avg_large} > small {avg_small}");
    }
}

#[test]
fn timeline_shows_burst_then_tail() {
    // Figure 6-6's shape: early burst of available tasks, then a long
    // low-parallelism tail for chain-y cycles.
    let traces = eight_puzzle_traces();
    let big = traces.iter().max_by_key(|t| t.tasks.len()).unwrap();
    let mut cfg = SimConfig::new(11, SimScheduler::Multi);
    cfg.timeline = true;
    let r = simulate_cycle(big, &cfg);
    assert!(!r.timeline.is_empty());
    let peak = r.timeline.iter().map(|&(_, n)| n).max().unwrap();
    assert!(peak >= 4, "some burst exists: peak {peak}");
    // The peak occurs in the first half of the cycle.
    let peak_t = r.timeline.iter().find(|&&(_, n)| n == peak).unwrap().0;
    assert!(peak_t < r.makespan_us * 0.75, "peak at {peak_t} of {}", r.makespan_us);
}

#[test]
fn update_phase_parallelizes_well() {
    // Figure 6-9: the update phase shows high speedups — the whole WM is
    // re-matched, providing abundant independent work.
    let task = eight_puzzle(&scrambled(4, 11));
    let (_, engine) = run_serial(&task, RunMode::DuringChunking, true);
    let update_traces: Vec<CycleTrace> = engine
        .trace
        .cycles
        .iter()
        .filter(|c| c.phase == Phase::Update && c.tasks.len() > 30)
        .cloned()
        .collect();
    assert!(!update_traces.is_empty(), "chunk updates were traced");
    let uni = simulate_run(&update_traces, &SimConfig::new(1, SimScheduler::Multi));
    let par = simulate_run(&update_traces, &SimConfig::new(11, SimScheduler::Multi));
    let s = total_seconds(&uni) / total_seconds(&par);
    assert!(s > 3.0, "update-phase speedup {s}");
}
