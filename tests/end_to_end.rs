//! Cross-crate integration: the full paper pipeline through the facade
//! crate — task → Soar agent → match engine → trace → Multimax simulator —
//! plus chunk transfer between engines.

use soar_psme::engine::{EngineConfig, Scheduler};
use soar_psme::rete::Phase;
use soar_psme::sim::{simulate_run, total_seconds, SimConfig, SimScheduler};
use soar_psme::soar::StopReason;
use soar_psme::tasks::{
    eight_puzzle, run_parallel, run_serial, scrambled, strips, RunMode, StripsConfig,
};

#[test]
fn full_pipeline_trace_to_simulated_speedup() {
    let task = eight_puzzle(&scrambled(5, 4));
    let (report, engine) = run_serial(&task, RunMode::WithoutChunking, true);
    assert_eq!(report.stop, StopReason::Halted);

    let cycles: Vec<_> = engine.trace.phase_cycles(Phase::Match).cloned().collect();
    assert!(!cycles.is_empty());
    let uni = total_seconds(&simulate_run(&cycles, &SimConfig::new(1, SimScheduler::Multi)));
    let par = total_seconds(&simulate_run(&cycles, &SimConfig::new(8, SimScheduler::Multi)));
    let speedup = uni / par;
    assert!(speedup > 2.0, "8 simulated processes speed up the run: {speedup:.2}x");
    assert!(speedup <= 8.0, "speedup bounded by the process count: {speedup:.2}x");
}

#[test]
fn chunks_transfer_between_engine_kinds() {
    // Learn on the serial engine, deploy the chunks on the parallel one.
    let task = strips(&StripsConfig::default());
    let (learned, _) = run_serial(&task, RunMode::DuringChunking, false);
    assert!(learned.stats.chunks_built > 0);

    let engine = soar_psme::engine::ParallelEngine::new(
        soar_psme::rete::ReteNetwork::new(),
        EngineConfig { workers: 2, scheduler: Scheduler::MultiQueue, ..Default::default() },
    );
    let mut agent = task.agent(engine);
    for c in learned.chunks {
        agent.load_production(c).unwrap();
    }
    let stop = agent.run(200);
    assert_eq!(stop, StopReason::Halted);
    assert_eq!(agent.stats.impasses, 0, "preloaded chunks preempt every tie");
    assert_eq!(agent.output, vec!["arrived"]);
}

#[test]
fn serial_and_parallel_agents_agree_on_behaviour() {
    let task = eight_puzzle(&scrambled(4, 11));
    let (ser, _) = run_serial(&task, RunMode::DuringChunking, false);
    let (par, _) = run_parallel(
        &task,
        RunMode::DuringChunking,
        EngineConfig { workers: 3, scheduler: Scheduler::SingleQueue, ..Default::default() },
    );
    assert_eq!(ser.stop, par.stop);
    assert_eq!(ser.output, par.output);
    assert_eq!(ser.stats.decisions, par.stats.decisions);
    assert_eq!(ser.stats.impasses, par.stats.impasses);
    assert_eq!(ser.stats.chunks_built, par.stats.chunks_built);
    // Structurally identical chunks (order may differ).
    let mut a: Vec<String> = ser.chunks.iter().map(|c| format!("{c}")).collect();
    let mut b: Vec<String> = par.chunks.iter().map(|c| format!("{c}")).collect();
    a.sort();
    b.sort();
    assert_eq!(a.len(), b.len());
}

#[test]
fn update_phase_traces_are_captured_and_simulable() {
    let task = eight_puzzle(&scrambled(5, 4));
    let (report, engine) = run_serial(&task, RunMode::DuringChunking, true);
    assert!(report.stats.chunks_built > 0);
    let updates: Vec<_> = engine.trace.phase_cycles(Phase::Update).cloned().collect();
    assert_eq!(
        updates.len() as u64,
        report.stats.chunks_built + task.productions.len() as u64 + 2, // + defaults
        "one update phase per production addition"
    );
    let nonempty: Vec<_> = updates.into_iter().filter(|c| c.len() > 10).collect();
    assert!(!nonempty.is_empty(), "chunk updates re-run WM through new nodes");
    let uni = total_seconds(&simulate_run(&nonempty, &SimConfig::new(1, SimScheduler::Multi)));
    let par = total_seconds(&simulate_run(&nonempty, &SimConfig::new(11, SimScheduler::Multi)));
    assert!(uni / par > 2.0, "update phase parallelizes: {:.2}x", uni / par);
}
