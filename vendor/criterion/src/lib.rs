#![allow(clippy::all)]
//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small surface `benches/micro.rs` uses — groups,
//! `bench_function`, `iter`/`iter_batched`, `criterion_group!`/
//! `criterion_main!` — as a plain median-of-samples timer printing one
//! line per benchmark. No plotting, no statistics beyond the median.

use std::time::{Duration, Instant};

/// How setup output is batched between timed runs (size hints are ignored
/// by the stub; every batch is one element).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Each batch holds exactly one element.
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f` for the configured number of samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            self.durations.push(start.elapsed());
            std::hint::black_box(out);
        }
    }

    /// Time `routine` over fresh `setup` output, excluding setup time.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.durations.push(start.elapsed());
            std::hint::black_box(out);
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {
        let _ = self.parent;
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.samples();
        BenchmarkGroup { name: name.into(), parent: self, sample_size }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples();
        run_one(&id.into(), samples, f);
        self
    }

    fn samples(&self) -> usize {
        if self.default_samples == 0 { 10 } else { self.default_samples }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples, durations: Vec::with_capacity(samples) };
    f(&mut b);
    b.durations.sort();
    let median = b.durations.get(b.durations.len() / 2).copied().unwrap_or_default();
    println!("bench {name:<40} median {:>12.3} µs ({} samples)", median.as_secs_f64() * 1e6, b.durations.len());
}

/// Re-export so `criterion::black_box` works.
pub use std::hint::black_box;

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("f", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
        let mut batched = 0;
        c.bench_function("h", |b| {
            b.iter_batched(|| 1u32, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 10);
    }
}
