#![allow(clippy::all)]
//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the tiny API subset it actually uses: `Mutex`, `RwLock`, and `Condvar`
//! with parking_lot's no-poison signatures (`lock()` returns the guard
//! directly). Poisoned std locks — only reachable after a panic while a
//! guard was held — are recovered with `into_inner` so behaviour matches
//! parking_lot's "no poisoning" contract.

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock whose acquisitions never return poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified; `guard` is atomically released while waiting.
    ///
    /// parking_lot takes `&mut MutexGuard`; std consumes and returns the
    /// guard, so the stub moves it out and back through the reference.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut(guard, |g| self.0.wait(g).unwrap_or_else(sync::PoisonError::into_inner));
    }

    /// Wake one waiter. Returns `true` if a thread was woken (parking_lot
    /// returns bool; std gives no signal, so this conservatively says true).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters. Returns the number woken (unknown under std: 0).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Replace `*dest` through a consuming closure. The closure must not panic;
/// `Condvar::wait`'s only failure mode (poisoning) is already recovered.
fn take_mut<T>(dest: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(dest);
        let new = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old))) {
            Ok(new) => new,
            Err(_) => std::process::abort(),
        };
        std::ptr::write(dest, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }
}
