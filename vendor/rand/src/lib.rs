#![allow(clippy::all)]
//! Offline stand-in for the `rand` crate (splitmix64/xoshiro-flavoured).
//!
//! Nothing in the workspace's library code uses `rand` — the in-tree
//! generators (`psme_rete::testgen::XorShift`) cover workload synthesis —
//! but several crates declare it for tests and benches. This stub provides
//! the conventional `Rng`/`SeedableRng`/`SmallRng`/`StdRng` surface so
//! those manifests resolve offline, with a deterministic splitmix64 core.

/// Core trait: a source of pseudo-random `u64`s plus convenience samplers.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a half-open integer range.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.next_u64() % span
    }

    /// A random `bool` with probability 1/2.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The small, fast generator (`rand::rngs::SmallRng` stand-in).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed ^ 0xA076_1D64_78BD_642F }
    }
}

/// The default generator (`rand::rngs::StdRng` stand-in; same core).
pub type StdRng = SmallRng;

/// `rand::rngs` module shape.
pub mod rngs {
    pub use super::{SmallRng, StdRng};
}

/// `rand::prelude` shape.
pub mod prelude {
    pub use super::{Rng, SeedableRng, SmallRng, StdRng};
}

/// A fresh generator seeded from the system clock (std feature).
pub fn thread_rng() -> SmallRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SmallRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..100 {
            let v = a.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
