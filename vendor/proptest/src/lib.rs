#![allow(unnameable_test_items)]
#![allow(clippy::all)]
//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the property-testing surface its tests use: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_filter`, integer-range / tuple /
//! collection / option / bool / string-pattern strategies, `any::<T>()`,
//! and the `prop_assert*` family. Cases are drawn from a deterministic
//! per-(test, case) RNG; there is no shrinking — on failure the original
//! inputs are printed instead.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// `proptest::arbitrary` — `any::<T>()` over the full value domain.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for a primitive.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> { Any(PhantomData) }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any(PhantomData)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// `proptest::collection` — sized `Vec` strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive size bounds for a collection strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `elem` draws.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size bounds.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// `proptest::bool` — the `ANY` bool strategy.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fair-coin bool strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Either boolean with probability 1/2.
    pub const ANY: BoolAny = BoolAny;
}

/// `proptest::option` — optional values.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some three times out of four, like proptest's default weight.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `None` or a draw from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything tests conventionally import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Reject the current case unless `cond` holds (the stub resamples by
/// simply skipping the case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn holds(x in 0u32..10, v in prop::collection::vec(0u8..3, 1..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let __vals = (
                        $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+
                    );
                    let __repr = format!("{:#?}", __vals);
                    let ($($pat,)+) = __vals;
                    let __result: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\ninputs: {}",
                                __case, stringify!($name), msg, __repr
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(x in 1u32..50, v in prop::collection::vec(0u8..4, 2..10)) {
            prop_assert!(x >= 1 && x < 50);
            prop_assert!(v.len() >= 2 && v.len() < 10, "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn options_and_bools(o in prop::option::of(0u8..3), b in prop::bool::ANY, u in any::<u64>()) {
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
            prop_assert!(b || !b);
            prop_assert_eq!(u, u);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #[test]
            fn inner(x in 0u8..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
