//! Config, error type, and the deterministic per-case RNG.

/// Configuration accepted by `proptest!`'s `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; the stub never rejects.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
    }
}

/// Why a test case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
    /// The case asked to be rejected (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type produced by `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 generator; one per (test, case) pair, so runs
/// are reproducible without any persistence files.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a over the test name.
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        // Distinct stream per case.
        TestRng { state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (`n = 0` yields 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform usize in `[lo, hi)`; empty ranges collapse to `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            lo
        } else {
            lo + self.below((hi - lo) as u64) as usize
        }
    }

    /// A bool that is true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::for_case("range", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }
}
