//! The `Strategy` trait and the value-source implementations the workspace
//! uses: integer ranges, tuples, `prop_map`, `Just`, and regex-lite string
//! patterns (`"[a-z]{1,6}"`-style).

use crate::test_runner::TestRng;

/// A source of random values. Unlike real proptest there is no shrinking:
/// `sample` draws a value directly from the deterministic per-case RNG.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (resamples up to a bound, then keeps
    /// the last draw — the stub never globally rejects).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_filter` adapter.
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter could not satisfy predicate: {}", self.reason);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// String patterns: a `&str` is a regex-lite template. Supported: literal
/// characters, escapes (`\n`, `\t`, `\r`, `\\`), character classes with
/// ranges (`[a-z0-9_]`), and the repetitions `{m}`, `{m,n}`, `?`, `*`, `+`
/// (`*`/`+` capped at 8).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    Lit(char),
    Class(Vec<(char, char)>),
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        _ => c,
    }
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let mut out = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                while let Some(&k) = chars.peek() {
                    if k == ']' {
                        chars.next();
                        break;
                    }
                    let k = chars.next().unwrap();
                    let k = if k == '\\' { unescape(chars.next().unwrap_or('\\')) } else { k };
                    if k == '-' && prev.is_some() && chars.peek().map_or(false, |&n| n != ']') {
                        let hi = chars.next().unwrap();
                        let hi = if hi == '\\' { unescape(chars.next().unwrap_or('\\')) } else { hi };
                        let lo = prev.take().unwrap();
                        ranges.pop();
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((k, k));
                        prev = Some(k);
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Lit(unescape(chars.next().unwrap_or('\\'))),
            c => Atom::Lit(c),
        };
        // Repetition postfix.
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for k in chars.by_ref() {
                    if k == '}' {
                        break;
                    }
                    spec.push(k);
                }
                match spec.split_once(',') {
                    Some((a, b)) => {
                        (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(0))
                    }
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        out.push((atom, lo, hi));
    }
    out
}

fn sample_pattern(pat: &str, rng: &mut TestRng) -> String {
    let mut s = String::new();
    for (atom, lo, hi) in parse_pattern(pat) {
        let n = rng.usize_in(lo, hi + 1);
        for _ in 0..n {
            match &atom {
                Atom::Lit(c) => s.push(*c),
                Atom::Class(ranges) => {
                    if ranges.is_empty() {
                        continue;
                    }
                    let total: u64 =
                        ranges.iter().map(|&(a, b)| (b as u64).saturating_sub(a as u64) + 1).sum();
                    let mut pick = rng.below(total);
                    for &(a, b) in ranges {
                        let span = (b as u64).saturating_sub(a as u64) + 1;
                        if pick < span {
                            if let Some(c) = char::from_u32(a as u32 + pick as u32) {
                                s.push(c);
                            }
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 1)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u8..9).sample(&mut r);
            assert!((3..9).contains(&v));
            let w = (-5i32..5).sample(&mut r);
            assert!((-5..5).contains(&w));
            let x = (0usize..=3).sample(&mut r);
            assert!(x <= 3);
        }
    }

    #[test]
    fn tuple_and_map_compose() {
        let mut r = rng();
        let s = (0u8..2, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!((10..22).contains(&v));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,6}".sample(&mut r);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = "[ -~\\n]{0,200}".sample(&mut r);
            assert!(t.len() <= 200);
            assert!(t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)), "{t:?}");
        }
    }

    #[test]
    fn filter_and_just() {
        let mut r = rng();
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r) % 2, 0);
        }
        assert_eq!(Just(7u8).sample(&mut r), 7);
    }
}
