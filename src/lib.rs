//! # soar-psme — facade crate
//!
//! Reproduction of *Soar/PSM-E: Investigating Match Parallelism in a Learning
//! Production System* (Tambe, Kalp, Gupta, Forgy, Milnes, Newell — PPoPP
//! 1988). Re-exports the workspace crates under one roof:
//!
//! - [`ops`] — the OPS5/Soar production-system language
//! - [`rete`] — the Rete match network with run-time production addition
//! - [`engine`] — the PSM-E parallel match engine (task queues, workers)
//! - [`soar`] — the Soar architecture (decide, impasses, chunking)
//! - [`tasks`] — the paper's task suites (eight-puzzle, Strips, Cypress-sub)
//! - [`sim`] — the Encore Multimax discrete-event simulator
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use psme_core as engine;
pub use psme_ops as ops;
pub use psme_rete as rete;
pub use psme_sim as sim;
pub use psme_soar as soar;
pub use psme_tasks as tasks;
