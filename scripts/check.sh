#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
#
#   build (release) -> tests (all crates) -> clippy (deny warnings)
#
# Runs fully offline against the vendored stub crates. If cargo still tries
# to reach a registry (e.g. a stale lockfile on a fresh checkout), we retry
# that step online and only fail if that attempt fails too.
set -u
cd "$(dirname "$0")/.."

run_step() {
    local name="$1"; shift
    echo "==> ${name}: $*"
    if CARGO_NET_OFFLINE=true "$@"; then
        return 0
    fi
    # Distinguish "registry unreachable" from a real failure: retry online.
    echo "==> ${name}: offline attempt failed, retrying with network access" >&2
    if "$@"; then
        return 0
    fi
    echo "!! ${name} failed" >&2
    return 1
}

fail=0
run_step "build" cargo build --release || fail=1
run_step "test" cargo test -q --workspace || fail=1
# The cross-scheduler differential suite is the gate for scheduler changes;
# run it by name so a filtered or partial test invocation can't skip it.
run_step "scheduler differential" \
    cargo test -q -p psme-core --test scheduler_differential || fail=1
# The alpha discrimination index is gated the same way: the indexed
# classifier must stay observationally identical to the linear oracle.
run_step "alpha differential" \
    cargo test -q -p psme-rete --test proptest_alpha || fail=1
# The beta-memory overhaul is gated the same way: the indexed hash-first
# probe must stay observationally identical to the reference whole-line
# scan over random add/delete interleavings.
run_step "memory differential" \
    cargo test -q -p psme-rete --test proptest_memory || fail=1
# The serving layer's gate: N concurrent sessions over one shared topology
# must stay bit-for-bit identical to N solo runs (including mid-run chunk
# learning); run it by name so a filtered invocation can't skip it.
run_step "serve isolation" \
    cargo test -q -p psme-serve --test serve_isolation || fail=1
# The trace layer's gates: ring/merge/export invariants, and the serving
# loop's flight-recorder behaviour (seeded overload must dump its sheds).
run_step "trace properties" \
    cargo test -q -p psme-obs --test proptest_trace || fail=1
run_step "trace flight" \
    cargo test -q -p psme-serve --test trace_flight || fail=1
# The persistence layer's gates: snapshot->restore must be bit-for-bit
# (and corrupt bytes typed errors, never panics), and hibernated/resumed
# sessions must finish identical to continuously-live and solo runs.
run_step "snapshot round-trip" \
    cargo test -q -p psme-rete --test proptest_snapshot || fail=1
run_step "serve hibernate" \
    cargo test -q -p psme-serve --test serve_hibernate || fail=1
# The sharded serving gate: a sharded run (including cross-shard stealing
# and per-shard tier stores) must stay bit-for-bit identical to the
# single-shard loop and to solo runs; run it by name so a filtered
# invocation can't skip it.
run_step "serve shard differential" \
    cargo test -q -p psme-serve --test serve_shard || fail=1
# The network front-end's gates: every wire frame round-trips (and every
# truncation/corruption is a typed error, never a panic), and loopback TCP
# responses stay bit-for-bit identical to in-process serve() under all
# three schedulers; run both by name so a filtered invocation can't skip
# them.
run_step "wire proptests" \
    cargo test -q -p psme-net --test proptest_wire || fail=1
run_step "net loopback differential" \
    cargo test -q -p psme-net --test net_loopback || fail=1
# The adaptive-reorganization gates: a mid-run bilinear rebuild must be
# observationally invisible (serve differential), and the detector/surgery
# invariants must hold over random topologies (proptests); run both by
# name so a filtered invocation can't skip them.
run_step "reorg differential" \
    cargo test -q -p psme-serve --test reorg_differential || fail=1
run_step "reorg proptests" \
    cargo test -q -p psme-rete --test proptest_reorg || fail=1

# The committed alpha-discrimination artifact must exist and parse: it is
# the evidence for the jump-table index's tests-per-wme reduction.
alpha_artifact="crates/bench/BENCH_alpha_discrimination.json"
if [ ! -f "$alpha_artifact" ]; then
    echo "!! missing ${alpha_artifact} (regenerate: cargo bench -p psme-bench --bench alpha_discrimination)" >&2
    fail=1
elif command -v python3 >/dev/null 2>&1; then
    if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$alpha_artifact"; then
        echo "!! ${alpha_artifact} is not valid JSON" >&2
        fail=1
    fi
fi

# Same for the serving-throughput artifact: the committed evidence for the
# 8-worker >= 4x single-session throughput gate.
serve_artifact="crates/bench/BENCH_serve_throughput.json"
if [ ! -f "$serve_artifact" ]; then
    echo "!! missing ${serve_artifact} (regenerate: cargo bench -p psme-bench --bench serve_throughput)" >&2
    fail=1
elif command -v python3 >/dev/null 2>&1; then
    if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$serve_artifact"; then
        echo "!! ${serve_artifact} is not valid JSON" >&2
        fail=1
    fi
fi
# And for the memory-probe artifact: the committed evidence for the
# indexed probe's entries-examined reduction.
memory_artifact="crates/bench/BENCH_memory_probe.json"
if [ ! -f "$memory_artifact" ]; then
    echo "!! missing ${memory_artifact} (regenerate: cargo bench -p psme-bench --bench memory_probe)" >&2
    fail=1
elif command -v python3 >/dev/null 2>&1; then
    if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$memory_artifact"; then
        echo "!! ${memory_artifact} is not valid JSON" >&2
        fail=1
    fi
fi
# The trace-overhead artifact must exist, parse, and show always-on tracing
# within its bound — the committed evidence that the flight recorder is
# cheap enough to leave on.
trace_artifact="crates/bench/BENCH_trace_overhead.json"
if [ ! -f "$trace_artifact" ]; then
    echo "!! missing ${trace_artifact} (regenerate: PSME_BENCH_DIR=\$PWD/crates/bench cargo bench -p psme-bench --bench trace_overhead)" >&2
    fail=1
elif command -v python3 >/dev/null 2>&1; then
    if ! python3 - "$trace_artifact" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
overhead = doc["overhead_pct"]
bound = doc["bound_pct"]
if overhead > bound:
    sys.exit(f"tracing overhead {overhead:.2f}% exceeds the committed bound {bound}%")
print(f"==> trace overhead: {overhead:.2f}% <= {bound}% — ok")
PY
    then
        echo "!! ${trace_artifact} invalid or over its overhead bound" >&2
        fail=1
    fi
fi
# The session-resume artifact must exist, parse, show a population at
# least 100x the live table, a passing tiered-vs-solo differential, and a
# resume p99 within its committed bound.
resume_artifact="crates/bench/BENCH_session_resume.json"
if [ ! -f "$resume_artifact" ]; then
    echo "!! missing ${resume_artifact} (regenerate: PSME_BENCH_DIR=\$PWD/crates/bench cargo bench -p psme-bench --bench session_resume)" >&2
    fail=1
elif command -v python3 >/dev/null 2>&1; then
    if ! python3 - "$resume_artifact" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
ratio = doc["population"] / doc["table_capacity"]
if ratio < 100:
    sys.exit(f"population {doc['population']} is only {ratio:.0f}x the "
             f"{doc['table_capacity']}-seat table (need >= 100x)")
if not doc["differential_ok"]:
    sys.exit("tiered-vs-solo differential failed in the committed artifact")
p99, bound = doc["resume_p99_ns"], doc["bound_p99_ns"]
if p99 > bound:
    sys.exit(f"resume p99 {p99:.0f}ns exceeds the committed bound {bound:.0f}ns")
print(f"==> session resume: {ratio:.0f}x population, differential ok, "
      f"p99 {p99/1e6:.1f}ms <= {bound/1e6:.1f}ms — ok")
PY
    then
        echo "!! ${resume_artifact} invalid or over its bounds" >&2
        fail=1
    fi
fi
# The shard-scaling artifact must exist, parse, and show (a) the modeled
# 4-shard configuration at least doubling single-shard throughput at equal
# workers per shard, and (b) line-lock batching at least halving the
# acquire count on the memory-heavy config.
shard_artifact="crates/bench/BENCH_shard_scaling.json"
if [ ! -f "$shard_artifact" ]; then
    echo "!! missing ${shard_artifact} (regenerate: PSME_BENCH_DIR=\$PWD/crates/bench cargo bench -p psme-bench --bench shard_scaling)" >&2
    fail=1
elif command -v python3 >/dev/null 2>&1; then
    if ! python3 - "$shard_artifact" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
gate = doc["model"]["gate"]
if gate["ratio"] < gate["required"]:
    sys.exit(f"4-shard/1-shard throughput ratio {gate['ratio']:.2f}x is below "
             f"the committed {gate['required']}x gate")
wide = [p for p in doc["model"]["sweep"] if p["logical_workers"] >= 64]
if not wide:
    sys.exit("sweep never reaches 64 logical workers")
one = gate["one_shard_8w_sessions_per_sec"]
if not all(p["sessions_per_sec"] > 2 * one for p in wide):
    sys.exit("64-logical-worker points do not scale past the single-bus knee")
lock = doc["line_lock"]
if lock["ratio"] < lock["required"]:
    sys.exit(f"line-lock batching ratio {lock['ratio']:.2f}x is below the "
             f"committed {lock['required']}x gate")
print(f"==> shard scaling: {gate['ratio']:.2f}x at 4 shards, "
      f"{wide[0]['sessions_per_sec']:.2f}/s at 64 logical workers, "
      f"line-lock {lock['ratio']:.2f}x — ok")
PY
    then
        echo "!! ${shard_artifact} invalid or under its scaling gates" >&2
        fail=1
    fi
fi
# The open-loop artifact must exist, parse, and show the open-loop shape
# on its deterministic DES sweep: no shedding well below the calibrated
# knee, a shed-rate curve monotone non-decreasing past it (and strictly
# positive at the top of the sweep), and a knee p99 sojourn within the
# calibrated bound.
open_artifact="crates/bench/BENCH_open_loop.json"
if [ ! -f "$open_artifact" ]; then
    echo "!! missing ${open_artifact} (regenerate: PSME_BENCH_DIR=\$PWD/crates/bench cargo bench -p psme-bench --bench open_loop)" >&2
    fail=1
elif command -v python3 >/dev/null 2>&1; then
    if ! python3 - "$open_artifact" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
des = doc["des"]
sweep = sorted(des["sweep"], key=lambda p: p["offered_multiple"])
if len(sweep) < 5:
    sys.exit(f"sweep has only {len(sweep)} points")
if sweep[0]["shed_rate"] != 0.0:
    sys.exit(f"shedding at {sweep[0]['offered_multiple']}x capacity "
             f"({sweep[0]['shed_rate']:.3f}) — below-knee load must all be served")
knee = des["gate"]["monotone_from_multiple"]
past = [p for p in sweep if p["offered_multiple"] >= knee]
rates = [p["shed_rate"] for p in past]
if rates != sorted(rates):
    sys.exit(f"shed rate is not monotone past the {knee}x knee: {rates}")
if rates[-1] <= 0.0:
    sys.exit("no shedding at the top of the sweep — the open loop never saturated")
p99, bound = des["gate"]["knee_p99_s"], des["gate"]["knee_p99_bound_s"]
if p99 > bound:
    sys.exit(f"knee p99 sojourn {p99:.3f}s exceeds the committed bound {bound:.3f}s")
for run in doc["host"]["runs"]:
    if run["completed"] + run["shed"] + run["refused"] != run["offered"]:
        sys.exit(f"host run at {run['offered_rate']}/s does not account for "
                 f"every offered session")
print(f"==> open loop: shed {rates[0]*100:.0f}%->{rates[-1]*100:.0f}% past the knee, "
      f"knee p99 {p99:.2f}s <= {bound:.2f}s, host runs balanced — ok")
PY
    then
        echo "!! ${open_artifact} invalid or off the open-loop shape" >&2
        fail=1
    fi
fi
# The adaptive-reorganization artifact must exist, parse, and show the
# headline result: on the adversarial chain sweep the adaptive engine's
# fitted growth exponent stays near-linear while the static linear network
# grows super-quadratically, the static/adaptive work ratio at the largest
# size clears its committed floor, and an armed-but-idle detector costs at
# most 3% mean CPU across the paper tasks.
reorg_artifact="crates/bench/BENCH_reorg_adaptive.json"
if [ ! -f "$reorg_artifact" ]; then
    echo "!! missing ${reorg_artifact} (regenerate: PSME_BENCH_DIR=\$PWD/crates/bench cargo bench -p psme-bench --bench reorg_adaptive)" >&2
    fail=1
elif command -v python3 >/dev/null 2>&1; then
    if ! python3 - "$reorg_artifact" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
exp = doc["adversarial"]["growth_exponent"]
if exp["adaptive"] > 2.3:
    sys.exit(f"adaptive growth exponent {exp['adaptive']:.2f} exceeds the "
             f"committed 2.3 bound (linear arm fitted {exp['linear']:.2f})")
ratio = doc["adversarial"]["linear_over_adaptive_at_largest"]
if ratio < 5.0:
    sys.exit(f"linear/adaptive work ratio at the largest size is only "
             f"{ratio:.1f}x (need >= 5x)")
idle = doc["armed_idle"]["mean_overhead_pct"]
if idle > 3.0:
    sys.exit(f"armed-but-idle detector overhead {idle:.2f}% mean over the "
             f"paper tasks exceeds the committed 3% bound")
print(f"==> reorg adaptive: exponent {exp['adaptive']:.2f} (linear "
      f"{exp['linear']:.2f}), ratio {ratio:.1f}x, armed-idle {idle:.2f}% — ok")
PY
    then
        echo "!! ${reorg_artifact} invalid or off its adaptive gates" >&2
        fail=1
    fi
fi
if cargo clippy --version >/dev/null 2>&1; then
    run_step "clippy" cargo clippy -q --workspace --all-targets -- -D warnings || fail=1
else
    echo "==> clippy: not installed, skipping (install with: rustup component add clippy)" >&2
fi

# A proptest failure writes a regression seed under proptest-regressions/.
# Those files must be checked in (so the seed keeps replaying in CI) — an
# untracked one means a failure was reproduced locally and then ignored.
if command -v git >/dev/null 2>&1 && git rev-parse --git-dir >/dev/null 2>&1; then
    stray=$(git ls-files --others --exclude-standard -- '*proptest-regressions*')
    if [ -n "$stray" ]; then
        echo "!! untracked proptest regression files (check them in):" >&2
        echo "$stray" >&2
        fail=1
    fi
fi

if [ "$fail" -ne 0 ]; then
    echo "CHECK FAILED" >&2
    exit 1
fi
echo "CHECK OK"
